// Package models builds the four DNN families of the paper's evaluation
// (Table 1): FNN-3 (three hidden fully connected layers), VGG-16, ResNet-20
// and LSTM-PTB, behind a uniform Model interface consumed by the distributed
// training runtime.
//
// Two scales exist for every family:
//
//   - Paper scale — the exact parameter counts of Table 1 (199,210 /
//     14,728,266 / 269,722 / 66,034,000). Used by the traffic and
//     compression-compute experiments (Figure 2, Table 2), which operate on
//     parameter vectors, not on training.
//   - Reduced scale — architecturally faithful CPU-trainable versions (same
//     layer patterns: three hidden FC layers; VGG conv-conv-pool stacks;
//     ResNet identity-shortcut residual stacks; single-layer LSTM LM) used
//     by the convergence experiments (Figures 3, 6–8). The substitution is
//     recorded in DESIGN.md §5.
package models

import (
	"fmt"

	"a2sgd/internal/nn"
	"a2sgd/internal/tensor"
)

// Batch is one training or evaluation batch. Classification models use
// X/Labels; language models use Tokens.
type Batch struct {
	X      *tensor.Mat
	Labels []int
	Tokens [][]int
}

// Size returns the number of samples in the batch.
func (b Batch) Size() int {
	if b.X != nil {
		return b.X.Rows
	}
	return len(b.Tokens)
}

// Metric distinguishes how a model's quality is reported.
type Metric int

// Metric kinds.
const (
	// MetricAccuracy: top-1 accuracy in [0, 1]; higher is better.
	MetricAccuracy Metric = iota
	// MetricPerplexity: exp(cross-entropy); lower is better.
	MetricPerplexity
)

// Model is the uniform interface the distributed runtime trains.
type Model interface {
	// Name identifies the model family ("fnn3", "vgg16", ...).
	Name() string
	// NumParams returns the learnable parameter count.
	NumParams() int
	// Step runs forward+backward on the batch, accumulating gradients
	// (after ZeroGrads), and returns the batch loss.
	Step(b Batch) float64
	// StepInterleaved is Step with gradient-readiness reporting: onReady(lo)
	// is invoked during the backward pass whenever the flattened gradient
	// elements [lo, NumParams()) have become final, with strictly decreasing
	// offsets and a guaranteed final onReady(0).
	StepInterleaved(b Batch, onReady func(lo int)) float64
	// Eval runs forward only and returns (loss, metric).
	Eval(b Batch) (loss float64, metric float64)
	// Metric reports how metric values should be interpreted.
	Metric() Metric
	// ZeroGrads clears the gradient accumulators.
	ZeroGrads()
	// GatherGrads/ScatterGrads move the flattened gradient vector.
	GatherGrads(dst []float32)
	ScatterGrads(src []float32)
	// GatherGradsRange fills dst[lo:hi] with that slice of the flattened
	// gradient — the per-bucket gather of the overlapped pipeline.
	GatherGradsRange(dst []float32, lo, hi int)
	// ScatterGradsRange writes src[lo:hi] back into the layers — the
	// per-bucket inverse of GatherGradsRange.
	ScatterGradsRange(src []float32, lo, hi int)
	// GradView writes into dst a view of the live gradient storage backing
	// the flattened elements [lo, hi), spanning parameter tensors as needed,
	// and returns dst. Every bucket is encoded from and reconstructed into
	// such a view in place — no gather or scatter copy, regardless of where
	// its boundaries fall.
	GradView(lo, hi int, dst *tensor.VecView) *tensor.VecView
	// ParamSegments reports the per-tensor boundaries of the flattened
	// vector, in GatherGrads order, for layer-granular bucket planning.
	ParamSegments() []nn.Segment
	// GatherParams/ScatterParams move the flattened weights.
	GatherParams(dst []float32)
	ScatterParams(src []float32)
	// StateLen reports the flattened non-learnable state length (batch-norm
	// running statistics); GatherState/ScatterState move it. Models without
	// such state report 0 and the gather/scatter are no-ops on empty slices.
	StateLen() int
	GatherState(dst []float32)
	ScatterState(src []float32)
	// Params exposes the learnable tensors for the optimizer.
	Params() []nn.Param
}

// classifier adapts an nn.Network to the Model interface.
type classifier struct {
	name string
	net  *nn.Network
}

func (c *classifier) Name() string       { return c.name }
func (c *classifier) NumParams() int     { return c.net.NumParams() }
func (c *classifier) Metric() Metric     { return MetricAccuracy }
func (c *classifier) ZeroGrads()         { c.net.ZeroGrads() }
func (c *classifier) Params() []nn.Param { return c.net.Params() }

func (c *classifier) Step(b Batch) float64 {
	logits := c.net.Forward(b.X, true)
	loss, dlogits := nn.SoftmaxCE(logits, b.Labels)
	c.net.Backward(dlogits)
	return loss
}

func (c *classifier) StepInterleaved(b Batch, onReady func(lo int)) float64 {
	logits := c.net.Forward(b.X, true)
	loss, dlogits := nn.SoftmaxCE(logits, b.Labels)
	c.net.BackwardInterleaved(dlogits, onReady)
	return loss
}

func (c *classifier) Eval(b Batch) (float64, float64) {
	logits := c.net.Forward(b.X, false)
	loss, _ := nn.SoftmaxCE(logits, b.Labels)
	return loss, nn.Accuracy(logits, b.Labels)
}

func (c *classifier) GatherGrads(dst []float32)  { c.net.GatherGrads(dst) }
func (c *classifier) ScatterGrads(src []float32) { c.net.ScatterGrads(src) }
func (c *classifier) GatherGradsRange(dst []float32, lo, hi int) {
	c.net.GatherGradsRange(dst, lo, hi)
}
func (c *classifier) ScatterGradsRange(src []float32, lo, hi int) {
	c.net.ScatterGradsRange(src, lo, hi)
}
func (c *classifier) GradView(lo, hi int, dst *tensor.VecView) *tensor.VecView {
	return c.net.GradView(lo, hi, dst)
}
func (c *classifier) ParamSegments() []nn.Segment { return c.net.ParamSegments() }
func (c *classifier) GatherParams(dst []float32)  { c.net.GatherParams(dst) }
func (c *classifier) ScatterParams(src []float32) { c.net.ScatterParams(src) }
func (c *classifier) StateLen() int               { return c.net.StateLen() }
func (c *classifier) GatherState(dst []float32)   { c.net.GatherState(dst) }
func (c *classifier) ScatterState(src []float32)  { c.net.ScatterState(src) }

// Config selects a model family and scale.
type Config struct {
	// Family is one of "fnn3", "vgg16", "resnet20", "lstm".
	Family string
	// Seed seeds weight initialization (all workers must agree).
	Seed uint64
	// Reduced selects the CPU-trainable scale (true for convergence runs).
	Reduced bool

	// Classification input/output spec (reduced scale). Zero values pick
	// the family defaults below.
	InputShape nn.Shape
	Classes    int

	// Language-model spec (reduced scale).
	Vocab, Embed, Hidden int
}

// PaperParamCount returns the Table 1 parameter count for a family.
func PaperParamCount(family string) (int, error) {
	switch family {
	case "fnn3":
		return 199_210, nil
	case "vgg16":
		return 14_728_266, nil
	case "resnet20":
		return 269_722, nil
	case "lstm":
		return 66_034_000, nil
	default:
		return 0, fmt.Errorf("models: unknown family %q", family)
	}
}

// Families lists the evaluation model families in Table 1 order.
func Families() []string { return []string{"fnn3", "vgg16", "resnet20", "lstm"} }

// New builds a model from the configuration.
func New(cfg Config) (Model, error) {
	rng := tensor.NewRNG(cfg.Seed)
	switch cfg.Family {
	case "fnn3":
		return newFNN3(rng, cfg), nil
	case "vgg16":
		return newVGG16(rng, cfg), nil
	case "resnet20":
		return newResNet20(rng, cfg), nil
	case "lstm":
		return newLSTM(rng, cfg), nil
	default:
		return nil, fmt.Errorf("models: unknown family %q", cfg.Family)
	}
}

// newFNN3 builds the FNN-3 feed-forward network: three hidden fully
// connected layers, as in the paper (MNIST: 784→256→128→64→10 at paper
// scale ≈ 199k params; reduced default 64→64→48→32→10).
func newFNN3(rng *tensor.RNG, cfg Config) Model {
	in, classes := cfg.InputShape, cfg.Classes
	if in.Size() == 0 {
		if cfg.Reduced {
			in = nn.Shape{C: 1, H: 8, W: 8}
		} else {
			in = nn.Shape{C: 1, H: 28, W: 28}
		}
	}
	if classes == 0 {
		classes = 10
	}
	var h1, h2, h3 int
	if cfg.Reduced {
		h1, h2, h3 = 64, 48, 32
	} else {
		// The paper does not spell out FNN-3's widths; these are solved to
		// land on Table 1's 199,210 parameters (784·223 + 223 + 223·88 +
		// 88 + 88·45 + 45 + 45·10 + 10 = 199,232 — within 0.011 %).
		h1, h2, h3 = 223, 88, 45
	}
	net := nn.NewNetwork(
		nn.NewLinear(rng, in.Size(), h1), nn.NewReLU(),
		nn.NewLinear(rng, h1, h2), nn.NewReLU(),
		nn.NewLinear(rng, h2, h3), nn.NewReLU(),
		nn.NewLinear(rng, h3, classes),
	)
	return &classifier{name: "fnn3", net: net}
}

// vggBlock appends conv(3×3, pad 1) + BN + ReLU ×reps then a 2×2 max pool.
func vggBlock(rng *tensor.RNG, layers *[]nn.Layer, in nn.Shape, outC, reps int) nn.Shape {
	cur := in
	for i := 0; i < reps; i++ {
		conv := nn.NewConv2D(rng, cur, outC, 3, 1, 1)
		*layers = append(*layers, conv)
		cur = conv.OutShape()
		*layers = append(*layers, nn.NewBatchNorm2D(cur), nn.NewReLU())
	}
	pool := nn.NewMaxPool2D(cur, 2)
	*layers = append(*layers, pool)
	return pool.OutShape()
}

// newVGG16 builds the VGG-16 pattern: five conv blocks of increasing width
// followed by the classifier head. Reduced scale uses 16×16 inputs, widths
// /8 and block reps (1,1,2,2,2) to stay CPU-trainable while preserving the
// conv-conv-pool architecture.
func newVGG16(rng *tensor.RNG, cfg Config) Model {
	in, classes := cfg.InputShape, cfg.Classes
	if classes == 0 {
		classes = 10
	}
	var widths [5]int
	var reps [5]int
	if cfg.Reduced {
		if in.Size() == 0 {
			in = nn.Shape{C: 3, H: 16, W: 16}
		}
		widths = [5]int{8, 16, 24, 32, 32}
		reps = [5]int{1, 1, 2, 2, 2}
	} else {
		if in.Size() == 0 {
			in = nn.Shape{C: 3, H: 32, W: 32}
		}
		widths = [5]int{64, 128, 256, 512, 512}
		reps = [5]int{2, 2, 3, 3, 3}
	}
	var layers []nn.Layer
	cur := in
	for b := 0; b < 5; b++ {
		if cur.H < 2 { // reduced inputs run out of spatial extent early
			break
		}
		cur = vggBlock(rng, &layers, cur, widths[b], reps[b])
	}
	layers = append(layers, nn.NewLinear(rng, cur.Size(), classes))
	return &classifier{name: "vgg16", net: nn.NewNetwork(layers...)}
}

// newResNet20 builds the ResNet-20 pattern (He et al., 6n+2 with n=3 for
// CIFAR): an input conv, three stages of residual blocks with widths
// 16/32/64, stride-2 projection shortcuts at the stage boundaries, global
// average pooling and a linear head. The full-scale count lands within ~1 %
// of Table 1's 269,722. The reduced scale keeps the same topology (one
// block per stage, i.e. ResNet-8) with narrower widths on 8×8 inputs.
func newResNet20(rng *tensor.RNG, cfg Config) Model {
	in, classes := cfg.InputShape, cfg.Classes
	if classes == 0 {
		classes = 10
	}
	var widths [3]int
	blocksPerStage := 3
	if cfg.Reduced {
		if in.Size() == 0 {
			in = nn.Shape{C: 3, H: 8, W: 8}
		}
		widths = [3]int{8, 12, 16}
		blocksPerStage = 1
	} else {
		if in.Size() == 0 {
			in = nn.Shape{C: 3, H: 32, W: 32}
		}
		widths = [3]int{16, 32, 64}
	}
	var layers []nn.Layer
	conv0 := nn.NewConv2D(rng, in, widths[0], 3, 1, 1)
	cur := conv0.OutShape()
	layers = append(layers, conv0, nn.NewBatchNorm2D(cur), nn.NewReLU())
	for stage := 0; stage < 3; stage++ {
		for blk := 0; blk < blocksPerStage; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2 // downsampling block at the stage boundary
			}
			c1 := nn.NewConv2D(rng, cur, widths[stage], 3, stride, 1)
			s1 := c1.OutShape()
			c2 := nn.NewConv2D(rng, s1, widths[stage], 3, 1, 1)
			s2 := c2.OutShape()
			inner := []nn.Layer{
				c1, nn.NewBatchNorm2D(s1), nn.NewReLU(),
				c2, nn.NewBatchNorm2D(s2),
			}
			label := fmt.Sprintf("s%db%d", stage, blk)
			if stride == 1 && cur == s2 {
				layers = append(layers, nn.NewResidual(label, inner...))
			} else {
				// 1×1 strided projection shortcut (plus BN), as in He et al.
				pc := nn.NewConv2D(rng, cur, widths[stage], 1, stride, 0)
				proj := []nn.Layer{pc, nn.NewBatchNorm2D(pc.OutShape())}
				layers = append(layers, nn.NewProjResidual(label, proj, inner...))
			}
			layers = append(layers, nn.NewReLU())
			cur = s2
		}
	}
	layers = append(layers, nn.NewGlobalAvgPool(cur), nn.NewLinear(rng, cur.C, classes))
	return &classifier{name: "resnet20", net: nn.NewNetwork(layers...)}
}

// lstmModel adapts nn.LSTMLM to the Model interface. The parameter list and
// the full gradient view are cached on first use (satellite of the hot-path
// work: the per-step accessors must not rebuild them).
type lstmModel struct {
	lm       *nn.LSTMLM
	gradView tensor.VecView
}

func (l *lstmModel) Name() string   { return "lstm" }
func (l *lstmModel) NumParams() int { return l.lm.NumParams() }
func (l *lstmModel) Metric() Metric { return MetricPerplexity }

func (l *lstmModel) Params() []nn.Param { return l.lm.Params() }

func (l *lstmModel) Step(b Batch) float64 {
	ce := l.lm.Forward(b.Tokens, true)
	l.lm.Backward()
	return ce
}

// StepInterleaved reports per-tensor readiness from inside truncated BPTT:
// the last timestep of the backward finalizes the output projection first,
// then each LSTM layer top-down, then the embedding — see
// nn.LSTMLM.BackwardInterleaved.
func (l *lstmModel) StepInterleaved(b Batch, onReady func(lo int)) float64 {
	ce := l.lm.Forward(b.Tokens, true)
	l.lm.BackwardInterleaved(onReady)
	return ce
}

func (l *lstmModel) Eval(b Batch) (float64, float64) {
	ce := l.lm.Forward(b.Tokens, false)
	return ce, nn.Perplexity(ce)
}

func (l *lstmModel) ZeroGrads() {
	for _, p := range l.lm.Params() {
		tensor.Zero(p.G)
	}
}

func (l *lstmModel) GatherGrads(dst []float32) {
	off := 0
	for _, p := range l.lm.Params() {
		copy(dst[off:off+len(p.G)], p.G)
		off += len(p.G)
	}
}

func (l *lstmModel) ScatterGrads(src []float32) {
	off := 0
	for _, p := range l.lm.Params() {
		copy(p.G, src[off:off+len(p.G)])
		off += len(p.G)
	}
}

func (l *lstmModel) GatherGradsRange(dst []float32, lo, hi int) {
	nn.GatherRange(l.lm.Params(), dst, lo, hi)
}

func (l *lstmModel) ScatterGradsRange(src []float32, lo, hi int) {
	nn.ScatterRange(l.lm.Params(), src, lo, hi)
}

func (l *lstmModel) GradView(lo, hi int, dst *tensor.VecView) *tensor.VecView {
	if l.gradView.Len() == 0 {
		nn.GradViewOf(l.lm.Params(), &l.gradView)
	}
	return l.gradView.SliceView(lo, hi, dst)
}

func (l *lstmModel) ParamSegments() []nn.Segment { return nn.SegmentsOf(l.lm.Params()) }

func (l *lstmModel) GatherParams(dst []float32) {
	off := 0
	for _, p := range l.lm.Params() {
		copy(dst[off:off+len(p.W)], p.W)
		off += len(p.W)
	}
}

func (l *lstmModel) ScatterParams(src []float32) {
	off := 0
	for _, p := range l.lm.Params() {
		copy(p.W, src[off:off+len(p.W)])
		off += len(p.W)
	}
}

// StateLen implements Model: the LSTM carries no cross-batch state (hidden
// state is reset per truncated-BPTT window), so there is nothing to capture.
func (l *lstmModel) StateLen() int          { return 0 }
func (l *lstmModel) GatherState([]float32)  {}
func (l *lstmModel) ScatterState([]float32) {}

// newLSTM builds the LSTM-PTB pattern. Paper scale: vocab 10,000, embedding
// and hidden 1500, two stacked layers (the Zaremba "large" PTB
// configuration) — 66.02 M parameters, matching Table 1's 66,034,000 to
// within 0.02 %. Reduced: vocab 64, embed 16, hidden 32, one layer.
func newLSTM(rng *tensor.RNG, cfg Config) Model {
	v, e, h := cfg.Vocab, cfg.Embed, cfg.Hidden
	layers := 2
	if v == 0 {
		if cfg.Reduced {
			v, e, h = 64, 16, 32
			layers = 1
		} else {
			v, e, h = 10_000, 1500, 1500
		}
	} else if cfg.Reduced {
		layers = 1
	}
	return &lstmModel{lm: nn.NewDeepLSTMLM(rng, v, e, h, layers)}
}
