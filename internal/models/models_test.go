package models

import (
	"math"
	"testing"

	"a2sgd/internal/nn"
	"a2sgd/internal/optim"
	"a2sgd/internal/tensor"
)

func TestPaperParamCounts(t *testing.T) {
	want := map[string]int{
		"fnn3": 199_210, "vgg16": 14_728_266, "resnet20": 269_722, "lstm": 66_034_000,
	}
	for fam, n := range want {
		got, err := PaperParamCount(fam)
		if err != nil || got != n {
			t.Errorf("%s: got %d, %v", fam, got, err)
		}
	}
	if _, err := PaperParamCount("nope"); err == nil {
		t.Error("unknown family should error")
	}
	if len(Families()) != 4 {
		t.Error("Families should list 4 entries")
	}
}

func TestNewUnknownFamily(t *testing.T) {
	if _, err := New(Config{Family: "nope"}); err == nil {
		t.Error("unknown family should error")
	}
}

func buildReduced(t *testing.T, fam string) Model {
	t.Helper()
	m, err := New(Config{Family: fam, Seed: 1, Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllFamiliesBuildReduced(t *testing.T) {
	for _, fam := range Families() {
		m := buildReduced(t, fam)
		if m.Name() != fam {
			t.Errorf("%s: name %s", fam, m.Name())
		}
		if m.NumParams() <= 0 {
			t.Errorf("%s: no params", fam)
		}
		if len(m.Params()) == 0 {
			t.Errorf("%s: empty params", fam)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, fam := range Families() {
		m := buildReduced(t, fam)
		n := m.NumParams()
		w := make([]float32, n)
		m.GatherParams(w)
		// Perturb and scatter back.
		w2 := append([]float32(nil), w...)
		for i := range w2 {
			w2[i] += 1
		}
		m.ScatterParams(w2)
		w3 := make([]float32, n)
		m.GatherParams(w3)
		for i := range w3 {
			if w3[i] != w[i]+1 {
				t.Fatalf("%s: param round trip failed at %d", fam, i)
			}
		}
		// Gradient plumbing.
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(i%7) - 3
		}
		m.ScatterGrads(g)
		g2 := make([]float32, n)
		m.GatherGrads(g2)
		for i := range g2 {
			if g2[i] != g[i] {
				t.Fatalf("%s: grad round trip failed at %d", fam, i)
			}
		}
		m.ZeroGrads()
		m.GatherGrads(g2)
		for i := range g2 {
			if g2[i] != 0 {
				t.Fatalf("%s: ZeroGrads left %v at %d", fam, g2[i], i)
			}
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a := buildReduced(t, "resnet20")
	b := buildReduced(t, "resnet20")
	wa := make([]float32, a.NumParams())
	wb := make([]float32, b.NumParams())
	a.GatherParams(wa)
	b.GatherParams(wb)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

func classificationBatch(shape nn.Shape, classes, n int, seed uint64) Batch {
	rng := tensor.NewRNG(seed)
	x := tensor.NewMat(n, shape.Size())
	labels := make([]int, n)
	// Strongly separable data: class mean c placed along distinct axes.
	for s := 0; s < n; s++ {
		c := rng.Intn(classes)
		labels[s] = c
		row := x.Row(s)
		rng.NormVec(row, 0, 0.3)
		row[c%len(row)] += 3
	}
	return Batch{X: x, Labels: labels}
}

// Training must reduce loss on every classification family — the substrate
// produces real learning, not noise.
func TestTrainingReducesLossClassifiers(t *testing.T) {
	shapes := map[string]nn.Shape{
		"fnn3":     {C: 1, H: 8, W: 8},
		"vgg16":    {C: 3, H: 16, W: 16},
		"resnet20": {C: 3, H: 8, W: 8},
	}
	for fam, shape := range shapes {
		m := buildReduced(t, fam)
		opt := optim.NewSGD(0.9, 0)
		batch := classificationBatch(shape, 10, 16, 5)
		first := 0.0
		var last float64
		for it := 0; it < 30; it++ {
			m.ZeroGrads()
			loss := m.Step(batch)
			if it == 0 {
				first = loss
			}
			last = loss
			opt.Step(m.Params(), 0.05)
		}
		if !(last < first*0.7) {
			t.Errorf("%s: loss %v -> %v (no learning)", fam, first, last)
		}
		if math.IsNaN(last) {
			t.Errorf("%s: loss became NaN", fam)
		}
		// Eval path runs and reports an accuracy in [0,1].
		loss, acc := m.Eval(batch)
		if loss < 0 || acc < 0 || acc > 1 {
			t.Errorf("%s: eval loss=%v acc=%v", fam, loss, acc)
		}
		if m.Metric() != MetricAccuracy {
			t.Errorf("%s: metric kind", fam)
		}
	}
}

func TestTrainingReducesLossLSTM(t *testing.T) {
	m := buildReduced(t, "lstm")
	opt := optim.NewSGD(0, 0)
	rng := tensor.NewRNG(9)
	// Highly predictable sequences: token i follows i-1 cyclically.
	mkBatch := func() Batch {
		toks := make([][]int, 8)
		for b := range toks {
			start := rng.Intn(64)
			seq := make([]int, 12)
			for i := range seq {
				seq[i] = (start + i) % 64
			}
			toks[b] = seq
		}
		return Batch{Tokens: toks}
	}
	// LSTM gradients are small (mean CE over B·T); like the paper's LR=22
	// for LSTM-PTB, a large rate is required.
	first, last := 0.0, 0.0
	for it := 0; it < 120; it++ {
		b := mkBatch()
		m.ZeroGrads()
		loss := m.Step(b)
		if it == 0 {
			first = loss
		}
		last = loss
		opt.Step(m.Params(), 5)
	}
	if !(last < first*0.5) {
		t.Errorf("lstm: loss %v -> %v", first, last)
	}
	_, ppl := m.Eval(mkBatch())
	if ppl >= 64 || ppl <= 1 {
		t.Errorf("perplexity %v out of meaningful range (vocab 64)", ppl)
	}
	if m.Metric() != MetricPerplexity {
		t.Error("metric kind")
	}
}

func TestBatchSize(t *testing.T) {
	b := Batch{X: tensor.NewMat(5, 3)}
	if b.Size() != 5 {
		t.Error("image batch size")
	}
	b = Batch{Tokens: make([][]int, 7)}
	if b.Size() != 7 {
		t.Error("token batch size")
	}
}

// Reduced parameter counts should be small enough for CPU training but the
// architecture should stay non-trivial.
func TestReducedScaleBounds(t *testing.T) {
	for _, fam := range Families() {
		m := buildReduced(t, fam)
		n := m.NumParams()
		if n < 1000 || n > 1_000_000 {
			t.Errorf("%s reduced scale has %d params", fam, n)
		}
	}
}

// Paper-scale architecture fidelity: the full-size builders must land on
// (or very near) Table 1's parameter counts.
func TestPaperScaleParamCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates paper-scale models")
	}
	cases := []struct {
		family string
		relTol float64 // |built − paper| / paper
	}{
		{"vgg16", 0.02},    // conv stack + BN + FC head of VGG-16 on 32×32
		{"resnet20", 0.02}, // 6n+2 residual stack, n=3, 16/32/64 with projections
		{"lstm", 0.001},    // 2-layer, 1500-hidden Zaremba-large PTB model
		{"fnn3", 0.001},    // widths solved to match Table 1 (223/88/45)
	}
	for _, c := range cases {
		paperN, err := PaperParamCount(c.family)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{Family: c.family, Seed: 1, Reduced: false})
		if err != nil {
			t.Fatal(err)
		}
		got := m.NumParams()
		rel := math.Abs(float64(got-paperN)) / float64(paperN)
		t.Logf("%s: built %d vs paper %d (%.3f%% off)", c.family, got, paperN, 100*rel)
		if rel > c.relTol {
			t.Errorf("%s: built %d params, paper %d (rel err %.3f > %.3f)",
				c.family, got, paperN, rel, c.relTol)
		}
	}
}
