package data

import (
	"math"
	"testing"

	"a2sgd/internal/nn"
	"a2sgd/internal/tensor"
)

func TestImagesMNISTLikeSeparable(t *testing.T) {
	d := NewImages(MNISTLike, nn.Shape{C: 1, H: 8, W: 8}, 10, 0.3, 7)
	rng := tensor.NewRNG(1)
	b := d.Sample(rng, 200)
	if b.X.Rows != 200 || b.X.Cols != 64 || len(b.Labels) != 200 {
		t.Fatalf("batch shape %dx%d labels %d", b.X.Rows, b.X.Cols, len(b.Labels))
	}
	// Nearest-prototype classification must beat chance by a wide margin —
	// the clusters are the learnable structure.
	correct := 0
	for s := 0; s < b.X.Rows; s++ {
		best, bi := math.Inf(1), -1
		for c := 0; c < 10; c++ {
			var dist float64
			for i, v := range b.X.Row(s) {
				dv := float64(v - d.protos[c][i])
				dist += dv * dv
			}
			if dist < best {
				best, bi = dist, c
			}
		}
		if bi == b.Labels[s] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("nearest-prototype accuracy %v, want ≥ 0.95", acc)
	}
}

func TestImagesCIFARLikeClassesDiffer(t *testing.T) {
	d := NewImages(CIFARLike, nn.Shape{C: 3, H: 16, W: 16}, 10, 0.1, 9)
	rng := tensor.NewRNG(2)
	// Mean absolute difference between class-0 and class-1 textures must be
	// clearly above the noise floor.
	a := make([]float32, d.Shape.Size())
	b := make([]float32, d.Shape.Size())
	d.fillSample(rng, 0, a)
	d.fillSample(rng, 1, b)
	var diff float64
	for i := range a {
		diff += math.Abs(float64(a[i] - b[i]))
	}
	diff /= float64(len(a))
	if diff < 0.3 {
		t.Errorf("class textures too similar: %v", diff)
	}
}

func TestImagesDeterministicTask(t *testing.T) {
	// Two generators with the same seed must produce identical prototypes —
	// all workers see the same task.
	d1 := NewImages(MNISTLike, nn.Shape{C: 1, H: 4, W: 4}, 3, 0.5, 42)
	d2 := NewImages(MNISTLike, nn.Shape{C: 1, H: 4, W: 4}, 3, 0.5, 42)
	for c := range d1.protos {
		for i := range d1.protos[c] {
			if d1.protos[c][i] != d2.protos[c][i] {
				t.Fatal("prototypes differ for equal seeds")
			}
		}
	}
	// EvalSet is deterministic.
	e1 := d1.EvalSet(10, 5)
	e2 := d2.EvalSet(10, 5)
	for i := range e1.X.Data {
		if e1.X.Data[i] != e2.X.Data[i] {
			t.Fatal("EvalSet not deterministic")
		}
	}
}

func TestImagesInvalidClassCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewImages(MNISTLike, nn.Shape{C: 1, H: 2, W: 2}, 1, 0.1, 1)
}

func TestTextMarkovStructure(t *testing.T) {
	tx := NewText(32, 11)
	rng := tensor.NewRNG(3)
	b := tx.Sample(rng, 50, 20)
	if len(b.Tokens) != 50 || len(b.Tokens[0]) != 20 {
		t.Fatalf("batch shape %dx%d", len(b.Tokens), len(b.Tokens[0]))
	}
	// The preferred successor must appear after its predecessor roughly
	// PSucc of the time.
	follows, total := 0, 0
	for _, seq := range b.Tokens {
		for i := 1; i < len(seq); i++ {
			total++
			if seq[i] == tx.succ[seq[i-1]] {
				follows++
			}
		}
	}
	rate := float64(follows) / float64(total)
	if rate < 0.55 || rate > 0.9 {
		t.Errorf("successor rate %v, want ≈ %v", rate, tx.PSucc)
	}
	// Tokens stay in range.
	for _, seq := range b.Tokens {
		for _, tok := range seq {
			if tok < 0 || tok >= 32 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
}

func TestTextZipfHeadHeavy(t *testing.T) {
	tx := NewText(64, 13)
	rng := tensor.NewRNG(5)
	counts := make([]int, 64)
	b := tx.Sample(rng, 100, 30)
	for _, seq := range b.Tokens {
		for _, tok := range seq {
			counts[tok]++
		}
	}
	// Token 0 (Zipf rank 0) must be among the most frequent.
	top := 0
	for tok, c := range counts {
		if c > counts[top] {
			top = tok
		}
	}
	if counts[0] < counts[top]/4 {
		t.Errorf("token 0 count %d vs max %d — not head-heavy", counts[0], counts[top])
	}
}

func TestTextEdgeCases(t *testing.T) {
	tx := NewText(8, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("seqLen<2 should panic")
			}
		}()
		tx.Sample(tensor.NewRNG(1), 1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny vocab should panic")
			}
		}()
		NewText(2, 1)
	}()
	e1 := tx.EvalSet(4, 6, 9)
	e2 := tx.EvalSet(4, 6, 9)
	for b := range e1.Tokens {
		for i := range e1.Tokens[b] {
			if e1.Tokens[b][i] != e2.Tokens[b][i] {
				t.Fatal("EvalSet not deterministic")
			}
		}
	}
}

func TestForFamily(t *testing.T) {
	for _, fam := range []string{"fnn3", "vgg16", "resnet20"} {
		img, txt, err := ForFamily(fam, 1)
		if err != nil || img == nil || txt != nil {
			t.Errorf("%s: img=%v txt=%v err=%v", fam, img != nil, txt != nil, err)
		}
	}
	img, txt, err := ForFamily("lstm", 1)
	if err != nil || img != nil || txt == nil {
		t.Errorf("lstm: img=%v txt=%v err=%v", img != nil, txt != nil, err)
	}
	if _, _, err := ForFamily("nope", 1); err == nil {
		t.Error("unknown family should error")
	}
}

func TestSin32Accuracy(t *testing.T) {
	for x := -20.0; x <= 20.0; x += 0.37 {
		got := float64(sin32(float32(x)))
		want := math.Sin(x)
		if math.Abs(got-want) > 5e-3 {
			t.Fatalf("sin32(%v) = %v, want %v", x, got, want)
		}
	}
}
