// Package data provides synthetic stand-ins for the paper's datasets, which
// are unavailable in this offline environment:
//
//   - MNIST   → Gaussian class clusters around per-class prototype images
//   - CIFAR10 → oriented sinusoidal textures per class plus noise
//   - PTB     → a Zipf-weighted Markov token stream
//
// Each generator produces genuinely learnable structure, so models trained
// on them exhibit the gradient dynamics the paper's experiments depend on —
// gradients concentrate around zero as training progresses (Figure 1) and
// accuracy/perplexity improves with epochs (Figure 3). The substitution is
// recorded in DESIGN.md §5.
package data

import (
	"fmt"

	"a2sgd/internal/models"
	"a2sgd/internal/nn"
	"a2sgd/internal/tensor"
)

// ImageKind selects an image-generation recipe.
type ImageKind int

// Image dataset recipes.
const (
	// MNISTLike draws each sample as a per-class prototype plus Gaussian
	// pixel noise (unimodal clusters, like flattened digit images).
	MNISTLike ImageKind = iota
	// CIFARLike draws class-specific oriented sinusoidal textures with
	// noise — higher intra-class variance, channel structure.
	CIFARLike
)

// Images generates labelled synthetic images.
type Images struct {
	Kind    ImageKind
	Shape   nn.Shape
	Classes int
	// Noise is the per-pixel noise std (higher = harder task).
	Noise float32

	protos [][]float32  // per-class prototypes (MNISTLike)
	freqs  [][3]float32 // per-class texture params (CIFARLike): fx, fy, phase
}

// NewImages builds a generator. The prototypes/textures are derived from
// seed only, so every worker constructs an identical task.
func NewImages(kind ImageKind, shape nn.Shape, classes int, noise float32, seed uint64) *Images {
	if classes < 2 {
		panic("data: need at least 2 classes")
	}
	d := &Images{Kind: kind, Shape: shape, Classes: classes, Noise: noise}
	rng := tensor.NewRNG(seed)
	switch kind {
	case MNISTLike:
		d.protos = make([][]float32, classes)
		for c := range d.protos {
			p := make([]float32, shape.Size())
			rng.NormVec(p, 0, 1)
			d.protos[c] = p
		}
	case CIFARLike:
		d.freqs = make([][3]float32, classes)
		for c := range d.freqs {
			d.freqs[c] = [3]float32{
				0.5 + 3*rng.Float32(),
				0.5 + 3*rng.Float32(),
				6.28 * rng.Float32(),
			}
		}
	default:
		panic(fmt.Sprintf("data: unknown image kind %d", kind))
	}
	return d
}

// fillSample renders one sample of class c into dst.
func (d *Images) fillSample(rng *tensor.RNG, c int, dst []float32) {
	switch d.Kind {
	case MNISTLike:
		proto := d.protos[c]
		for i := range dst {
			dst[i] = proto[i] + d.Noise*rng.Norm()
		}
	case CIFARLike:
		f := d.freqs[c]
		hw := d.Shape.H * d.Shape.W
		for ch := 0; ch < d.Shape.C; ch++ {
			chF := 1 + 0.3*float32(ch)
			for y := 0; y < d.Shape.H; y++ {
				for x := 0; x < d.Shape.W; x++ {
					arg := f[0]*chF*float32(x) + f[1]*float32(y) + f[2]
					v := sin32(arg)
					dst[ch*hw+y*d.Shape.W+x] = v + d.Noise*rng.Norm()
				}
			}
		}
	}
}

// Sample draws a batch of size n with uniform class labels using the
// caller's RNG (each worker passes its own stream → disjoint shards).
func (d *Images) Sample(rng *tensor.RNG, n int) models.Batch {
	x := tensor.NewMat(n, d.Shape.Size())
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		c := rng.Intn(d.Classes)
		labels[s] = c
		d.fillSample(rng, c, x.Row(s))
	}
	return models.Batch{X: x, Labels: labels}
}

// EvalSet returns a deterministic held-out batch shared by all workers.
func (d *Images) EvalSet(n int, seed uint64) models.Batch {
	return d.Sample(tensor.NewRNG(seed^0xeea1eea1), n)
}

func sin32(x float32) float32 {
	// Cheap range-reduced sine good to ~1e-3 — fine for texture synthesis.
	const twoPi = 6.283185307179586
	f := float64(x)
	f -= float64(int64(f/twoPi)) * twoPi
	if f < 0 {
		f += twoPi
	}
	// Bhaskara-like approximation on [0, π], mirrored for [π, 2π].
	neg := false
	if f > 3.141592653589793 {
		f -= 3.141592653589793
		neg = true
	}
	v := 16 * f * (3.141592653589793 - f) / (49.3480220054468 - 4*f*(3.141592653589793-f))
	if neg {
		v = -v
	}
	return float32(v)
}

// Text generates a Zipf-weighted Markov token stream — the PTB stand-in.
// The chain has deterministic high-probability successor structure so a
// language model can reduce perplexity well below the vocabulary size.
type Text struct {
	Vocab int
	// succ[t] is token t's preferred successor (taken with prob. PSucc).
	succ  []int
	PSucc float64
	zipfS float64
}

// NewText builds a corpus generator over a vocab-token alphabet.
func NewText(vocab int, seed uint64) *Text {
	if vocab < 4 {
		panic("data: vocab too small")
	}
	rng := tensor.NewRNG(seed)
	succ := make([]int, vocab)
	for t := range succ {
		succ[t] = rng.Intn(vocab)
	}
	return &Text{Vocab: vocab, succ: succ, PSucc: 0.7, zipfS: 1.1}
}

// Sample draws a batch of token sequences of the given length (the model
// predicts positions 1..seqLen−1 from their predecessors).
func (t *Text) Sample(rng *tensor.RNG, batch, seqLen int) models.Batch {
	if seqLen < 2 {
		panic("data: seqLen must be ≥ 2")
	}
	z := tensor.NewZipf(rng, t.Vocab, t.zipfS)
	toks := make([][]int, batch)
	for b := range toks {
		seq := make([]int, seqLen)
		seq[0] = z.Next()
		for i := 1; i < seqLen; i++ {
			if rng.Float64() < t.PSucc {
				seq[i] = t.succ[seq[i-1]]
			} else {
				seq[i] = z.Next()
			}
		}
		toks[b] = seq
	}
	return models.Batch{Tokens: toks}
}

// EvalSet returns a deterministic held-out batch shared by all workers.
func (t *Text) EvalSet(batch, seqLen int, seed uint64) models.Batch {
	return t.Sample(tensor.NewRNG(seed^0x7e57da7a), batch, seqLen)
}

// ForFamily builds the conventional dataset for a model family at reduced
// scale, mirroring Table 1's model↔dataset pairing.
func ForFamily(family string, seed uint64) (img *Images, txt *Text, err error) {
	switch family {
	case "fnn3":
		return NewImages(MNISTLike, nn.Shape{C: 1, H: 8, W: 8}, 10, 0.6, seed), nil, nil
	case "vgg16":
		return NewImages(CIFARLike, nn.Shape{C: 3, H: 16, W: 16}, 10, 0.5, seed), nil, nil
	case "resnet20":
		return NewImages(CIFARLike, nn.Shape{C: 3, H: 8, W: 8}, 10, 0.5, seed), nil, nil
	case "lstm":
		return nil, NewText(64, seed), nil
	default:
		return nil, nil, fmt.Errorf("data: unknown family %q", family)
	}
}
