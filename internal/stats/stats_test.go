package stats

import (
	"math"
	"testing"
	"testing/quick"

	"a2sgd/internal/tensor"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float32{1, 2, 3, 4, 5, -1, -2, 0.5}
	var w Welford
	w.AddSlice(xs)
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	for _, x := range xs {
		d := float64(x) - mean
		sq += d * d
	}
	variance := sq / float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean %v want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-12 {
		t.Errorf("var %v want %v", w.Var(), variance)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("n %v", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty accumulator should be all-zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Error("single observation: mean 5, var 0")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := tensor.NewRNG(1)
	xs := make([]float32, 1000)
	rng.NormVec(xs, 3, 2)
	var whole, a, b Welford
	whole.AddSlice(xs)
	a.AddSlice(xs[:317])
	b.AddSlice(xs[317:])
	a.Merge(b)
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Errorf("merge mismatch: (%v,%v) vs (%v,%v)", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}
	// Merging into empty adopts the other side.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Error("merge into empty failed")
	}
	// Merging empty is a no-op.
	n := a.N()
	a.Merge(Welford{})
	if a.N() != n {
		t.Error("merge of empty changed state")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	h.Add(-0.9) // bin 0
	h.Add(-0.1) // bin 1
	h.Add(0.1)  // bin 2
	h.Add(0.9)  // bin 3
	h.Add(-5)   // clamped to bin 0
	h.Add(5)    // clamped to bin 3
	want := []int64{2, 1, 1, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total %d", h.Total())
	}
	if got := h.Frac(0); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Frac(0) = %v", got)
	}
	if got := h.PeakFrac(); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("PeakFrac = %v", got)
	}
	if got := h.BinCenter(0); math.Abs(got-(-0.75)) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if h.Render(20) == "" {
		t.Error("Render produced nothing")
	}
}

func TestHistogramInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, -1, 8)
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999} {
		y := ErfInv(x)
		if got := math.Erf(y); math.Abs(got-x) > 1e-9 {
			t.Errorf("Erf(ErfInv(%v)) = %v", x, got)
		}
	}
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Error("ErfInv at ±1 should be ±Inf")
	}
}

// Property: round trip holds for random x in (-1, 1).
func TestErfInvProperty(t *testing.T) {
	f := func(u uint32) bool {
		x := 2*float64(u)/float64(math.MaxUint32) - 1
		if x <= -1 || x >= 1 {
			return true
		}
		return math.Abs(math.Erf(ErfInv(x))-x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGaussianTailThreshold(t *testing.T) {
	// For a large N(0,1) sample, the fraction above TailThreshold(p) must
	// be close to p.
	rng := tensor.NewRNG(7)
	xs := make([]float32, 200000)
	rng.NormVec(xs, 0, 1)
	g := FitGaussian(xs)
	if math.Abs(g.Mu) > 0.02 || math.Abs(g.Sigma-1) > 0.02 {
		t.Fatalf("fit = %+v, want ~N(0,1)", g)
	}
	for _, p := range []float64{0.5, 0.1, 0.01} {
		tau := g.TailThreshold(p)
		cnt := 0
		for _, x := range xs {
			if math.Abs(float64(x)-g.Mu) > tau {
				cnt++
			}
		}
		got := float64(cnt) / float64(len(xs))
		if math.Abs(got-p) > 0.15*p+0.002 {
			t.Errorf("p=%v: observed tail %v", p, got)
		}
	}
	if !math.IsInf(g.TailThreshold(0), 1) {
		t.Error("p=0 should give +Inf")
	}
	if g.TailThreshold(1) != 0 {
		t.Error("p=1 should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float32{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}
