// Package stats provides the statistical substrate used across the
// repository: streaming moments (Welford), fixed-bin histograms (the
// gradient-distribution plots of Figure 1), a Gaussian model of gradient
// values with the inverse-CDF threshold estimation that Gaussian-K
// sparsification relies on, and small numeric utilities (erf⁻¹, quantiles).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates count, mean and variance in a single numerically
// stable streaming pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddSlice folds every element of xs into the accumulator.
func (w *Welford) AddSlice(xs []float32) {
	for _, x := range xs {
		w.Add(float64(x))
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge combines another accumulator into w (parallel reduction form).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Histogram is a fixed-range, fixed-bin-count histogram. Values outside
// [Lo, Hi) land in the clamped edge bins so no observation is lost — the
// same convention matplotlib uses for the paper's Figure 1 plots.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram over [lo, hi) with bins buckets.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram spec")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// AddSlice records every element of xs.
func (h *Histogram) AddSlice(xs []float32) {
	for _, x := range xs {
		h.Add(float64(x))
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Frac returns the fraction of observations in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// PeakFrac returns the largest single-bin fraction; Figure 1's "values
// concentrate around zero over time" claim is quantified by this number
// growing across training.
func (h *Histogram) PeakFrac() float64 {
	var m int64
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	if h.total == 0 {
		return 0
	}
	return float64(m) / float64(h.total)
}

// Render draws a simple fixed-width ASCII bar chart, one row per bin.
func (h *Histogram) Render(width int) string {
	var max int64 = 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := int(int64(width) * c / max)
		fmt.Fprintf(&b, "%+9.4f |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Gaussian is a fitted normal model N(Mu, Sigma²) of a sample, as assumed by
// Gaussian-K sparsification for gradient values.
type Gaussian struct {
	Mu, Sigma float64
}

// FitGaussian estimates mean and std from xs in one pass.
func FitGaussian(xs []float32) Gaussian {
	var w Welford
	w.AddSlice(xs)
	return Gaussian{Mu: w.Mean(), Sigma: w.Std()}
}

// TailThreshold returns the magnitude threshold τ ≥ 0 such that, under the
// fitted Gaussian, P(|X − Mu| > τ) ≈ p. Gaussian-K uses it to select
// approximately k = p·n elements without sorting: τ = σ·√2·erf⁻¹(1−p).
func (g Gaussian) TailThreshold(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 0
	}
	return g.Sigma * math.Sqrt2 * ErfInv(1-p)
}

// ErfInv computes the inverse error function with the Giles (2012)
// single-precision-grade rational approximation refined by one Newton step,
// accurate to ~1e-9 over (-1, 1).
func ErfInv(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	if x >= 1 {
		return math.Inf(1)
	}
	// Initial approximation (Winitzki).
	a := 0.147
	ln := math.Log(1 - x*x)
	t1 := 2/(math.Pi*a) + ln/2
	y := math.Copysign(math.Sqrt(math.Sqrt(t1*t1-ln/a)-t1), x)
	// Two Newton refinements on erf(y) = x.
	for i := 0; i < 2; i++ {
		e := math.Erf(y) - x
		y -= e / (2 / math.SqrtPi * math.Exp(-y*y))
	}
	return y
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation on the sorted copy. Used in tests and reporting.
func Quantile(xs []float32, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	for i, x := range xs {
		s[i] = float64(x)
	}
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
