// Quickstart: train FNN-3 with A2SGD across 4 workers and compare the
// per-worker communication volume against dense SGD — the paper's headline
// in ~40 lines.
package main

import (
	"fmt"
	"log"

	"a2sgd"
)

func main() {
	const workers = 4

	fmt.Println("== A2SGD quickstart: FNN-3, 4 workers ==")
	res, err := a2sgd.Train(a2sgd.TrainConfig{
		Family:         "fnn3",
		Spec:           "a2sgd",
		Workers:        workers,
		Epochs:         8,
		StepsPerEpoch:  16,
		BatchPerWorker: 16,
		Momentum:       0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Epochs {
		fmt.Printf("epoch %2d  loss %.4f  top-1 accuracy %.3f\n", e.Epoch, e.Loss, e.Metric)
	}

	dense, err := a2sgd.Train(a2sgd.TrainConfig{
		Family: "fnn3", Spec: "dense", Workers: workers,
		Epochs: 8, StepsPerEpoch: 16, BatchPerWorker: 16, Momentum: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal accuracy:   a2sgd %.3f   dense %.3f\n", res.FinalMetric(), dense.FinalMetric())
	fmt.Printf("payload/worker:   a2sgd %d B   dense %d B  (%.0fx less traffic)\n",
		res.PayloadBytes, dense.PayloadBytes,
		float64(dense.PayloadBytes)/float64(res.PayloadBytes))
	ib := a2sgd.IB100()
	fmt.Printf("modelled sync:    a2sgd %.1f µs   dense %.1f µs on %s with %d workers\n",
		1e6*(res.ModeledIterSec(ib)-res.AvgComputeSec-res.AvgEncodeSec),
		1e6*(dense.ModeledIterSec(ib)-dense.AvgComputeSec-dense.AvgEncodeSec),
		ib.Name, workers)
}
