// Compression comparison: run every registered algorithm — including the
// Rand-K / TernGrad extensions and the A2SGD ablations — on one model and
// one gradient vector, showing compute cost, payload size and convergence
// side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"a2sgd"
	"a2sgd/internal/tensor"
)

func main() {
	// Part 1: local compression cost + payload on a 5M-parameter gradient.
	const n = 5_000_000
	g := make([]float32, n)
	tensor.NewRNG(1).NormVec(g, 0, 0.05)

	fmt.Printf("== local compression of a %d-parameter gradient ==\n", n)
	fmt.Printf("%-14s %12s %14s\n", "algorithm", "encode (ms)", "payload (B)")
	for _, name := range a2sgd.Algorithms() {
		if b, ok := a2sgd.Lookup(name); ok && b.Wraps > 0 {
			continue // wrappers (periodic) compose leaves; nothing to time here
		}
		alg, err := a2sgd.NewAlgorithm(name, a2sgd.DefaultOptions(n))
		if err != nil {
			log.Fatal(err)
		}
		alg.Encode(g) // warm-up allocations
		t0 := time.Now()
		p := alg.Encode(g)
		ms := time.Since(t0).Seconds() * 1000
		fmt.Printf("%-14s %12.2f %14d\n", name, ms, p.Bits/8)
	}

	// Part 2: convergence of the main algorithms plus the A2SGD ablations
	// on FNN-3 — demonstrating why the error vector and the two-level
	// (rather than single) mean matter.
	// Sparsifiers use density 0.05 here: the paper's 0.001 is tuned for
	// multi-million-parameter models and would select single-digit k on
	// this reduced one.
	fmt.Println("\n== convergence on FNN-3, 4 workers, 6 epochs ==")
	for _, name := range []string{"dense", "a2sgd", "a2sgd-noef", "a2sgd-onemean", "dgc", "randk", "terngrad"} {
		res, err := a2sgd.Train(a2sgd.TrainConfig{
			Family: "fnn3", Algorithm: name, Workers: 4,
			Epochs: 6, StepsPerEpoch: 12, BatchPerWorker: 8,
			Momentum: 0.9, Seed: 9, Density: 0.05,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-14s final top-1 accuracy %.3f\n", name, res.FinalMetric())
	}
}
