// Command bucket_overlap demonstrates the bucketed, overlapped gradient
// pipeline: the same A2SGD run with one whole-model bucket versus four
// layer-granular buckets whose collectives are pipelined behind encode, and
// the overlap-aware iteration price on the paper's fabric.
package main

import (
	"fmt"

	"a2sgd"
)

func main() {
	base := a2sgd.TrainConfig{
		Family:    "fnn3",
		Algorithm: "a2sgd",
		Workers:   4,
		Epochs:    3,
	}
	single, err := a2sgd.Train(base)
	if err != nil {
		panic(err)
	}

	bucketed := base
	bucketed.BucketBytes = 8192 // <= 8 KiB per bucket, split at layer bounds
	bucketed.Overlap = true     // pipeline bucket i's sync behind i+1's encode
	over, err := a2sgd.Train(bucketed)
	if err != nil {
		panic(err)
	}

	fmt.Printf("single bucket:  acc %.3f, %d bucket(s), %d B/step payload\n",
		single.FinalMetric(), single.Buckets, single.PayloadBytes)
	fmt.Printf("overlapped:     acc %.3f, %d bucket(s), %d B/step payload\n",
		over.FinalMetric(), over.Buckets, over.PayloadBytes)

	f := a2sgd.IB100()
	serial := over.ModeledIterSecSerial(f)
	pipelined := over.ModeledIterSecOverlap(f)
	fmt.Printf("modelled on %s: serial %.2fus, overlapped %.2fus (%.2fus of sync hidden)\n",
		f.Name, serial*1e6, pipelined*1e6, (serial-pipelined)*1e6)
}
