// ResNet/CIFAR-style workload: residual CNN on synthetic textured images,
// comparing A2SGD's convergence against dense SGD across worker counts —
// the paper's Figure 3/6–8 experiment for one model family.
package main

import (
	"fmt"
	"log"

	"a2sgd"
)

func main() {
	fmt.Println("== ResNet-20 (reduced) on synthetic CIFAR-like textures ==")
	for _, workers := range []int{2, 4, 8} {
		fmt.Printf("\n-- %d workers --\n", workers)
		for _, algo := range []string{"dense", "a2sgd", "topk"} {
			res, err := a2sgd.Train(a2sgd.TrainConfig{
				Family:         "resnet20",
				Algorithm:      algo,
				Workers:        workers,
				Epochs:         5,
				StepsPerEpoch:  10,
				BatchPerWorker: 8,
				Momentum:       0.9,
				Seed:           5,
			})
			if err != nil {
				log.Fatalf("%s/%d: %v", algo, workers, err)
			}
			fmt.Printf("%-8s accuracy per epoch:", algo)
			for _, e := range res.Epochs {
				fmt.Printf(" %.2f", e.Metric)
			}
			fmt.Printf("   (payload %d B/worker)\n", res.PayloadBytes)
		}
	}
}
