// Per-bucket policy mixing: partition the model into gradient buckets and
// let a policy choose each bucket's synchronization algorithm — the
// composition experiment the paper's conclusion suggests. The mixed policy
// compresses the big buckets with A2SGD (O(1) payload each) while the small
// ones stay dense, landing between the two uniform extremes on traffic
// while staying near dense convergence.
package main

import (
	"fmt"
	"log"

	"a2sgd"
)

func main() {
	const bucketBytes = 8192 // layer-granular buckets of <= 8 KiB

	policies := []string{
		"uniform(dense)",
		"uniform(a2sgd)",
		"mixed(big=a2sgd, small=dense, threshold=8KiB)",
		"bylayer(.b=dense, default=a2sgd)", // bias tensors stay dense, weights compress
	}

	fmt.Printf("== FNN-3, 4 workers, buckets of %d bytes ==\n", bucketBytes)
	fmt.Printf("%-48s %-26s %10s %8s\n", "policy", "composition", "payload(B)", "top-1")
	for _, policy := range policies {
		res, err := a2sgd.Train(a2sgd.TrainConfig{
			Family: "fnn3", Policy: policy, Workers: 4,
			Epochs: 6, StepsPerEpoch: 12, BatchPerWorker: 8,
			Momentum: 0.9, Seed: 9,
			BucketBytes: bucketBytes, Overlap: true,
		})
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		fmt.Printf("%-48s %-26s %10d %8.3f\n",
			res.Policy, res.Algorithm, res.PayloadBytes, res.FinalMetric())
	}

	// Wrappers compose in specs too: round reduction on top of quantization.
	res, err := a2sgd.Train(a2sgd.TrainConfig{
		Family: "fnn3", Spec: "periodic(qsgd(levels=8), interval=4)", Workers: 4,
		Epochs: 6, StepsPerEpoch: 12, BatchPerWorker: 8, Momentum: 0.9, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspec %-42s avg payload %d B/step, top-1 %.3f\n",
		"periodic(qsgd(levels=8), interval=4):", res.PayloadBytes, res.FinalMetric())
}
