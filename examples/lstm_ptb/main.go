// LSTM-PTB workload: the paper's headline case (66 M parameters, where
// A2SGD improves total training time 3.2× vs Top-K and 23.2× vs QSGD).
// This example trains the reduced LSTM language model with every evaluated
// algorithm, reports perplexity, and prices the full 66 M-parameter
// synchronization on the modelled 100 Gbps fabric.
package main

import (
	"fmt"
	"log"

	"a2sgd"
)

func main() {
	const workers = 4
	fmt.Println("== LSTM-PTB workload: perplexity per algorithm ==")

	type outcome struct {
		name string
		ppl  float64
		res  *a2sgd.Result
	}
	var outs []outcome
	for _, algo := range a2sgd.EvaluatedAlgorithms() {
		res, err := a2sgd.Train(a2sgd.TrainConfig{
			Family:         "lstm",
			Algorithm:      algo,
			Workers:        workers,
			Epochs:         6,
			StepsPerEpoch:  12,
			BatchPerWorker: 8,
			Seed:           3,
		})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		outs = append(outs, outcome{algo, res.FinalMetric(), res})
		fmt.Printf("%-10s final perplexity %8.2f  payload %8d B/worker\n",
			algo, res.FinalMetric(), res.PayloadBytes)
	}

	// Price the paper-scale exchange: 66 M parameters on 100 Gbps IB.
	paperN, err := a2sgd.PaperParamCount("lstm")
	if err != nil {
		log.Fatal(err)
	}
	ib := a2sgd.IB100()
	fmt.Printf("\nmodelled sync time for the full %d-parameter LSTM (%d workers, %s):\n",
		paperN, workers, ib.Name)
	for _, o := range outs {
		alg, err := a2sgd.NewAlgorithm(o.name, a2sgd.DefaultOptions(paperN))
		if err != nil {
			log.Fatal(err)
		}
		sync := ib.SyncTime(alg.ExchangeKind(), alg.PayloadBytes(paperN), workers)
		fmt.Printf("  %-10s %12.3f ms  (%d bytes/worker)\n",
			o.name, sync*1000, alg.PayloadBytes(paperN))
	}
}
