package a2sgd

import (
	"testing"

	"a2sgd/internal/models"
)

func TestRegistryCompleteness(t *testing.T) {
	names := Algorithms()
	want := map[string]bool{
		"a2sgd": true, "a2sgd-fused": true, "a2sgd-noef": true, "a2sgd-onemean": true,
		"a2sgd-allgather": true,
		"dense":           true, "topk": true, "gaussiank": true, "qsgd": true,
		"qsgd-elias": true, "randk": true, "terngrad": true, "dgc": true,
		"periodic": true,
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(names), len(want), names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected algorithm %q", n)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Algorithms() must be sorted")
		}
	}
}

func TestEvaluatedAlgorithmsAreRegistered(t *testing.T) {
	for _, n := range EvaluatedAlgorithms() {
		a, err := NewAlgorithm(n, DefaultOptions(100))
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("%s: empty name", n)
		}
	}
}

func TestNewAlgorithmValidation(t *testing.T) {
	if _, err := NewAlgorithm("nope", DefaultOptions(10)); err == nil {
		t.Error("unknown algorithm must error")
	}
	if _, err := NewAlgorithm("a2sgd", Options{}); err == nil {
		t.Error("missing N must error")
	}
}

func TestEveryRegisteredAlgorithmEncodes(t *testing.T) {
	g := make([]float32, 512)
	for i := range g {
		g[i] = float32(i%11) - 5
	}
	for _, name := range Algorithms() {
		spec := name
		wrapper := false
		if b, ok := Lookup(name); ok && b.Wraps > 0 {
			spec = name + "(dense)" // wrappers need an inner algorithm
			wrapper = true
		}
		a, err := NewAlgorithm(spec, DefaultOptions(len(g)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := a.Encode(g)
		if p.Bits <= 0 && !wrapper { // periodic's off-steps legitimately send 0 bits
			t.Errorf("%s: payload bits %d", name, p.Bits)
		}
		if a.PayloadBytes(len(g)) <= 0 {
			t.Errorf("%s: payload bytes", name)
		}
		a.Reset()
	}
}

func TestTrainFacadeSmoke(t *testing.T) {
	res, err := Train(TrainConfig{
		Family: "fnn3", Algorithm: "a2sgd", Workers: 2,
		Epochs: 2, StepsPerEpoch: 4, BatchPerWorker: 4, Momentum: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "a2sgd" || len(res.Epochs) != 2 {
		t.Errorf("result: %+v", res)
	}
	if res.PayloadBytes != 8 {
		t.Errorf("A2SGD payload %d bytes, want 8", res.PayloadBytes)
	}
	// The fabric helpers price iterations.
	if res.ModeledIterSec(IB100()) <= 0 {
		t.Error("modelled iteration time")
	}
	if IB100().Beta >= TCP10G().Beta {
		t.Error("fabric profiles")
	}
}

func TestTrainFacadeDefaultsAndErrors(t *testing.T) {
	if _, err := Train(TrainConfig{Family: "fnn3", Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm must error")
	}
	// Defaults: algorithm a2sgd, 1 worker.
	res, err := Train(TrainConfig{Family: "fnn3", Epochs: 1, StepsPerEpoch: 2, BatchPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "a2sgd" || res.Workers != 1 {
		t.Errorf("defaults: %+v", res)
	}
}

func TestTrainDensityOverride(t *testing.T) {
	res, err := Train(TrainConfig{
		Family: "fnn3", Algorithm: "topk", Workers: 2,
		Epochs: 1, StepsPerEpoch: 2, BatchPerWorker: 2,
		Density: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantK := int(0.01 * float64(res.NumParams))
	if res.PayloadBytes != int64(4*wantK) {
		t.Errorf("topk payload %d, want %d", res.PayloadBytes, 4*wantK)
	}
}

func TestFamiliesAndParamCounts(t *testing.T) {
	if len(Families()) != len(models.Families()) {
		t.Error("families mismatch")
	}
	n, err := PaperParamCount("lstm")
	if err != nil || n != 66_034_000 {
		t.Errorf("lstm params %d %v", n, err)
	}
}

func TestTrainFacadeBucketedOverlap(t *testing.T) {
	base := TrainConfig{
		Family: "fnn3", Algorithm: "a2sgd", Workers: 2,
		Epochs: 2, StepsPerEpoch: 4, BatchPerWorker: 8, Seed: 5,
	}
	over := base
	over.BucketBytes = 8192 // 4 layer-granular buckets on reduced fnn3
	over.Overlap = true
	rs, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Train(over)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Buckets != 1 || ro.Buckets < 4 {
		t.Fatalf("bucket counts %d/%d, want 1 and >=4", rs.Buckets, ro.Buckets)
	}
	// Overlapped pipeline vs the same plan run synchronously: bit-identical.
	syncSame := over
	syncSame.Overlap = false
	rss, err := Train(syncSame)
	if err != nil {
		t.Fatal(err)
	}
	if rss.FinalMetric() != ro.FinalMetric() {
		t.Errorf("overlap changed the result: %v vs %v", ro.FinalMetric(), rss.FinalMetric())
	}
	// Per-bucket O(1) traffic and the overlap-aware price law are populated.
	if want := int64(8 * ro.Buckets); ro.PayloadBytes != want {
		t.Errorf("payload %d, want %d", ro.PayloadBytes, want)
	}
	f := IB100()
	if ro.ModeledIterSecOverlap(f) > ro.ModeledIterSecSerial(f) {
		t.Error("overlap law must not exceed the serial law")
	}
	if _, err := Train(TrainConfig{Family: "fnn3", Allreduce: "bogus"}); err == nil {
		t.Error("bad allreduce name must error")
	}
}
