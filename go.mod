module a2sgd

go 1.24
