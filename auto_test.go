package a2sgd

import (
	"testing"

	"a2sgd/internal/models"
	"a2sgd/internal/plan"
)

func fnn3Schedule(t *testing.T, o PlanOptions) *Schedule {
	t.Helper()
	sched, err := BuildSchedule("fnn3", o)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func assertFacadeRunsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: epoch counts %d != %d", label, len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i].Loss != b.Epochs[i].Loss || a.Epochs[i].Metric != b.Epochs[i].Metric {
			t.Errorf("%s: epoch %d diverged: %+v vs %+v", label, i, a.Epochs[i], b.Epochs[i])
		}
	}
}

// TestTrainLegacyKnobsMatchLoweredSchedule pins the façade acceptance
// criterion: a legacy TrainConfig{BucketBytes, Policy, Topology} run is
// bitwise-identical to the same run driven by its lowered Schedule.
func TestTrainLegacyKnobsMatchLoweredSchedule(t *testing.T) {
	base := TrainConfig{
		Family: "fnn3", Workers: 4,
		Epochs: 2, StepsPerEpoch: 4, BatchPerWorker: 8, Seed: 5, Momentum: 0.9,
	}
	for _, tc := range []struct {
		name             string
		policy           string
		bucket, topology int
		overlap          bool
	}{
		{"bucketed qsgd", "uniform(qsgd(levels=8))", 8192, 0, true},
		{"mixed two-level", "mixed(big=a2sgd, small=dense, threshold=8KiB)", 8192, 2, false},
	} {
		legacy := base
		legacy.Policy = tc.policy
		legacy.BucketBytes = tc.bucket
		legacy.Topology = tc.topology
		legacy.Overlap = tc.overlap
		lres, err := Train(legacy)
		if err != nil {
			t.Fatalf("%s legacy: %v", tc.name, err)
		}

		pol, err := ParsePolicy(tc.policy)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.New(models.Config{Family: "fnn3", Seed: 1, Reduced: true})
		if err != nil {
			t.Fatal(err)
		}
		lowered := base
		lowered.Schedule = plan.Lower(m.ParamSegments(), pol, tc.bucket, tc.topology, tc.overlap, base.Workers)
		sres, err := Train(lowered)
		if err != nil {
			t.Fatalf("%s lowered: %v", tc.name, err)
		}
		assertFacadeRunsIdentical(t, tc.name, lres, sres)
		if lres.Buckets != sres.Buckets || lres.Topology != sres.Topology || lres.Overlap != sres.Overlap {
			t.Errorf("%s: metadata diverged: %d/%d/%v vs %d/%d/%v", tc.name,
				lres.Buckets, lres.Topology, lres.Overlap, sres.Buckets, sres.Topology, sres.Overlap)
		}
	}
}

// TestTrainAutoPolicyPlans runs the "auto" policy end to end on the
// in-process fabric: the façade must route it through the planner and
// produce a converging, schedule-conformant run.
func TestTrainAutoPolicyPlans(t *testing.T) {
	res, err := Train(TrainConfig{
		Family: "fnn3", Workers: 4, Policy: "auto",
		Epochs: 3, StepsPerEpoch: 8, BatchPerWorker: 8, Seed: 7, Momentum: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "auto(dense, topk, qsgd, gaussiank, a2sgd)" {
		t.Errorf("policy %q", res.Policy)
	}
	if !res.Overlap {
		t.Error("auto runs must use the overlapped pipeline")
	}
	if res.FinalMetric() < 0.5 {
		t.Errorf("auto-planned fnn3 reached only %.3f accuracy", res.FinalMetric())
	}
}

// TestTrainAutoOverTCP pins transport independence for auto-planned runs:
// the same schedule over loopback TCP matches the in-process fabric bitwise.
func TestTrainAutoOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	cfg := TrainConfig{
		Family: "fnn3", Workers: 3, Policy: "auto(dense, a2sgd)",
		Epochs: 2, StepsPerEpoch: 4, BatchPerWorker: 4, Seed: 9, Momentum: 0.9,
	}
	inproc, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TCP = true
	tcp, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertFacadeRunsIdentical(t, "auto tcp-vs-inproc", inproc, tcp)
}

func TestTrainScheduleConflicts(t *testing.T) {
	sched := fnn3Schedule(t, PlanOptions{Workers: 2, Pricer: IB100()})
	base := TrainConfig{
		Family: "fnn3", Workers: 2, Schedule: sched,
		Epochs: 1, StepsPerEpoch: 2, BatchPerWorker: 2,
	}
	for _, mutate := range []func(*TrainConfig){
		func(tc *TrainConfig) { tc.Spec = "a2sgd" },
		func(tc *TrainConfig) { tc.Policy = "uniform(dense)" },
		func(tc *TrainConfig) { tc.Algorithm = "dense" },
		func(tc *TrainConfig) { tc.BucketBytes = 4096 },
		func(tc *TrainConfig) { tc.Overlap = true },
		func(tc *TrainConfig) { tc.Topology = 2 },
		func(tc *TrainConfig) { tc.Density = 0.01 },
	} {
		tc := base
		mutate(&tc)
		if _, err := Train(tc); err == nil {
			t.Errorf("config %+v: expected schedule-conflict error", tc)
		}
	}
	// The unmutated schedule run works.
	if _, err := Train(base); err != nil {
		t.Fatalf("schedule run: %v", err)
	}
}

// TestAutoPolicyPinsRespected: BucketBytes and Topology alongside "auto"
// pin those axes of the planner's search.
func TestAutoPolicyPinsRespected(t *testing.T) {
	res, err := Train(TrainConfig{
		Family: "fnn3", Workers: 4, Policy: "auto(a2sgd)",
		BucketBytes: 8192, Topology: 2,
		Epochs: 1, StepsPerEpoch: 2, BatchPerWorker: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets < 4 {
		t.Errorf("pinned 8KiB budget yielded %d buckets", res.Buckets)
	}
	if res.Topology != 2 {
		t.Errorf("pinned topology ignored: %d", res.Topology)
	}
	if res.Algorithm == "dense" {
		t.Errorf("pinned candidate ignored: %s", res.Algorithm)
	}
}

func TestBuildScheduleUnknownFamily(t *testing.T) {
	if _, err := BuildSchedule("nope", PlanOptions{Workers: 2, Pricer: IB100()}); err == nil {
		t.Fatal("expected unknown-family error")
	}
}
