// Package a2sgd is the public API of this repository: a from-scratch Go
// implementation of A2SGD — two-level gradient averaging with O(1)
// communication per worker ("O(1) Communication for Distributed SGD through
// Two-Level Gradient Averaging", Bhattacharya, Yu & Chowdhury, CLUSTER
// 2021) — together with the full substrate it is evaluated on: a neural
// network framework, MPI-style collectives, the Dense/Top-K/Gaussian-K/QSGD
// baselines, and a distributed data-parallel training runtime.
//
// # Quick start
//
//	res, err := a2sgd.Train(a2sgd.TrainConfig{
//		Family:    "fnn3",   // fnn3 | vgg16 | resnet20 | lstm
//		Algorithm: "a2sgd",  // a2sgd | dense | topk | gaussiank | qsgd | ...
//		Workers:   8,
//		Epochs:    10,
//	})
//
// The returned Result carries per-epoch accuracy/perplexity, the measured
// compression compute time, the exact per-worker traffic, and helpers that
// price an iteration on a modelled network fabric (the paper's 100 Gbps
// InfiniBand by default).
package a2sgd

import (
	"fmt"
	"sort"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/tcpnet"
	"a2sgd/internal/compress"
	"a2sgd/internal/core"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
)

// Algorithm is one gradient-synchronization method (see package
// a2sgd/internal/compress for the interface contract).
type Algorithm = compress.Algorithm

// Options configures algorithm construction.
type Options = compress.Options

// Fabric is an α–β network model used to price synchronization time.
type Fabric = netsim.Fabric

// TwoTier is a hierarchical network model: fast intra-node links, slow
// inter-node links. It prices the Topology two-level schedules.
type TwoTier = netsim.TwoTier

// Pricer is the interface both Fabric and TwoTier satisfy; every
// Result.ModeledIterSec* helper accepts either.
type Pricer = netsim.Pricer

// Result is a completed training run.
type Result = cluster.Result

// EpochStats is one epoch's loss and held-out metric.
type EpochStats = cluster.EpochStats

// IB100 returns the paper's 100 Gbps InfiniBand fabric model.
func IB100() Fabric { return netsim.IB100() }

// TCP10G returns a commodity 10 Gbps Ethernet fabric model.
func TCP10G() Fabric { return netsim.TCP10G() }

// TwoTierIB100 returns the default hierarchical network model for nodes of
// the given width: NVLink-class intra-node links, 100 Gbps InfiniBand
// between nodes.
func TwoTierIB100(ranksPerNode int) TwoTier { return netsim.TwoTierIB100(ranksPerNode) }

// TwoTierTCP10G is TwoTierIB100 with commodity 10 GbE between nodes.
func TwoTierTCP10G(ranksPerNode int) TwoTier { return netsim.TwoTierTCP10G(ranksPerNode) }

// builders maps algorithm names to constructors.
var builders = map[string]func(Options) Algorithm{
	"a2sgd": func(o Options) Algorithm { return core.NewFromOptions(o) },
	"a2sgd-fused": func(o Options) Algorithm {
		return core.New(o.N, core.WithMode(core.Fused), core.WithAllreduce(o.Allreduce))
	},
	"a2sgd-noef": func(o Options) Algorithm {
		return core.New(o.N, core.WithoutErrorFeedback(), core.WithAllreduce(o.Allreduce))
	},
	"a2sgd-onemean": func(o Options) Algorithm { return core.New(o.N, core.WithOneMean(), core.WithAllreduce(o.Allreduce)) },
	"a2sgd-allgather": func(o Options) Algorithm {
		return core.New(o.N, core.WithAllgather())
	},
	"dense":      func(o Options) Algorithm { return compress.NewDense(o) },
	"topk":       func(o Options) Algorithm { return compress.NewTopK(o) },
	"gaussiank":  func(o Options) Algorithm { return compress.NewGaussianK(o) },
	"qsgd":       func(o Options) Algorithm { return compress.NewQSGD(o) },
	"qsgd-elias": func(o Options) Algorithm { return compress.NewQSGDElias(o) },
	"randk":      func(o Options) Algorithm { return compress.NewRandK(o) },
	"dgc":        func(o Options) Algorithm { return compress.NewDGC(o) },
	"terngrad":   func(o Options) Algorithm { return compress.NewTernGrad(o) },
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EvaluatedAlgorithms lists the five methods of the paper's evaluation in
// figure-legend order.
func EvaluatedAlgorithms() []string {
	return []string{"dense", "topk", "qsgd", "gaussiank", "a2sgd"}
}

// NewAlgorithm builds a registered algorithm. Options.N must be set.
func NewAlgorithm(name string, o Options) (Algorithm, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("a2sgd: unknown algorithm %q (have %v)", name, Algorithms())
	}
	if o.N <= 0 {
		return nil, fmt.Errorf("a2sgd: Options.N must be positive")
	}
	return b(o), nil
}

// DefaultOptions mirrors the paper's hyperparameters (density 0.001 for the
// sparsifiers, QSGD level 4) for an n-parameter model.
func DefaultOptions(n int) Options { return compress.DefaultOptions(n) }

// Periodic wraps any algorithm with round reduction: workers synchronize
// only every interval-th step (local-SGD style in between) — the
// communication-reduction composition the paper's conclusion suggests.
func Periodic(inner Algorithm, interval int) Algorithm {
	return compress.NewPeriodic(inner, interval)
}

// TrainConfig configures a distributed training run through the façade.
type TrainConfig struct {
	// Family selects the model: "fnn3", "vgg16", "resnet20", "lstm".
	Family string
	// Algorithm selects gradient synchronization (see Algorithms()).
	Algorithm string
	// Workers is the data-parallel width (default 1).
	Workers int
	// Epochs, StepsPerEpoch, BatchPerWorker bound the run (defaults 1/10/16).
	Epochs, StepsPerEpoch, BatchPerWorker int
	// Seed fixes model init and data (default 1).
	Seed uint64
	// Momentum for the SGD optimizer (Table 1 runs use 0.9).
	Momentum float32
	// Density / QuantLevels override the paper defaults when non-zero.
	Density     float64
	QuantLevels int
	// HistIters captures Figure-1 gradient histograms at these steps.
	HistIters []int
	// TCP runs the worker group over real loopback TCP sockets instead of
	// the in-process channel fabric. Results are identical (the collectives
	// are transport agnostic); this exercises the network stack end to end.
	TCP bool
	// LRScale multiplies the Table-1 learning-rate schedule (reduced-scale
	// calibration; 0 = default).
	LRScale float64
	// BucketBytes partitions the gradient into layer-granular buckets of at
	// most this many bytes, each with its own algorithm instance (per-bucket
	// error feedback, seeds and A2SGD means) and its own collective. 0 keeps
	// the whole-model single bucket.
	BucketBytes int
	// Overlap pipelines bucket i's synchronization behind the gather+encode
	// of bucket i+1 (DDP-style comm/compute overlap). Results are bitwise
	// identical to the synchronous path for the same bucket plan.
	Overlap bool
	// Topology is the two-level hierarchy width in ranks per node: when > 1
	// every collective runs intra-node first, then across node leaders,
	// then broadcasts back (comm.SetTopology). Consecutive ranks share a
	// node. 0 or 1 keeps the flat topology. Hierarchical runs are
	// convergence-equivalent to flat runs (float tolerance, not bitwise)
	// and deterministic for a fixed seed.
	Topology int
	// Allreduce selects the dense/scalar allreduce algorithm: "auto"
	// (default), "ring", or "recdouble".
	Allreduce string
}

// allreduceByName maps TrainConfig.Allreduce to the comm algorithm.
var allreduceByName = map[string]comm.AllreduceAlgorithm{
	"":          comm.AlgoAuto,
	"auto":      comm.AlgoAuto,
	"ring":      comm.AlgoRing,
	"recdouble": comm.AlgoRecursiveDoubling,
}

// Train runs data-parallel training with the named algorithm and returns
// rank 0's view of the run.
func Train(tc TrainConfig) (*Result, error) {
	if tc.Seed == 0 {
		tc.Seed = 1
	}
	if tc.Algorithm == "" {
		tc.Algorithm = "a2sgd"
	}
	if _, ok := builders[tc.Algorithm]; !ok {
		return nil, fmt.Errorf("a2sgd: unknown algorithm %q (have %v)", tc.Algorithm, Algorithms())
	}
	allreduce, ok := allreduceByName[tc.Allreduce]
	if !ok {
		return nil, fmt.Errorf("a2sgd: unknown allreduce %q (have auto, ring, recdouble)", tc.Allreduce)
	}
	cfg := cluster.Config{
		Workers:        tc.Workers,
		Family:         tc.Family,
		Epochs:         tc.Epochs,
		StepsPerEpoch:  tc.StepsPerEpoch,
		BatchPerWorker: tc.BatchPerWorker,
		Seed:           tc.Seed,
		Momentum:       tc.Momentum,
		HistIters:      tc.HistIters,
		LRScale:        tc.LRScale,
		BucketBytes:    tc.BucketBytes,
		Overlap:        tc.Overlap,
		Topology:       tc.Topology,
		NewBucketAlgorithm: func(rank, bucket, n int) compress.Algorithm {
			o := compress.DefaultOptions(n)
			// Bucket 0 keeps the historical per-rank seed so the default
			// single-bucket run reproduces pre-bucketing results exactly;
			// later buckets decorrelate their stochastic-compression RNG.
			o.Seed = tc.Seed*31 + uint64(rank) + 1 + uint64(bucket)*1_000_003
			o.Allreduce = allreduce
			if tc.Density > 0 {
				o.Density = tc.Density
			}
			if tc.QuantLevels > 0 {
				o.QuantLevels = tc.QuantLevels
			}
			return builders[tc.Algorithm](o)
		},
	}
	if tc.TCP {
		cfg.GroupRunner = tcpnet.RunGroup
	}
	return cluster.Train(cfg)
}

// Families lists the evaluation model families (Table 1).
func Families() []string { return models.Families() }

// PaperParamCount returns the Table 1 parameter count for a family.
func PaperParamCount(family string) (int, error) { return models.PaperParamCount(family) }
