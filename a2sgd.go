// Package a2sgd is the public API of this repository: a from-scratch Go
// implementation of A2SGD — two-level gradient averaging with O(1)
// communication per worker ("O(1) Communication for Distributed SGD through
// Two-Level Gradient Averaging", Bhattacharya, Yu & Chowdhury, CLUSTER
// 2021) — together with the full substrate it is evaluated on: a neural
// network framework, MPI-style collectives, the Dense/Top-K/Gaussian-K/QSGD
// baselines, and a distributed data-parallel training runtime.
//
// # Quick start
//
//	res, err := a2sgd.Train(a2sgd.TrainConfig{
//		Family:  "fnn3",                 // fnn3 | vgg16 | resnet20 | lstm
//		Spec:    "topk(density=0.01)",   // any registered algorithm spec
//		Workers: 8,
//		Epochs:  10,
//	})
//
// # Algorithm specs and policies
//
// Every synchronization algorithm is constructed from a spec string with
// typed, validated parameters — "a2sgd", "topk(density=0.01)",
// "qsgd(levels=8)" — and wrappers compose: "periodic(a2sgd, interval=4)"
// synchronizes only every 4th step. Algorithms() lists the registered
// names, AlgorithmUsage() their full signatures, and Register extends the
// registry with third-party compressors.
//
// A per-bucket Policy chooses a spec per gradient bucket when BucketBytes
// partitions the model: "mixed(big=a2sgd, small=dense, threshold=64KiB)"
// compresses the big buckets and leaves the small ones dense;
// "bylayer(conv=qsgd(levels=8), default=a2sgd)" keys on layer names.
//
// The returned Result carries per-epoch accuracy/perplexity, the measured
// compression compute time, the exact per-worker traffic, and helpers that
// price an iteration on a modelled network fabric (the paper's 100 Gbps
// InfiniBand by default).
package a2sgd

import (
	"fmt"
	"strconv"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/comm/tcpnet"
	"a2sgd/internal/compress"
	_ "a2sgd/internal/core" // registers a2sgd and its ablation variants
	"a2sgd/internal/elastic"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// Algorithm is one gradient-synchronization method (see package
// a2sgd/internal/compress for the interface contract).
type Algorithm = compress.Algorithm

// Options configures algorithm construction.
type Options = compress.Options

// Spec is a parsed algorithm spec — the registry's constructor input.
type Spec = compress.Spec

// Builder registers one algorithm: parameter schema plus constructor.
type Builder = compress.Builder

// ParamSpec declares one accepted spec parameter.
type ParamSpec = compress.ParamSpec

// BuildArgs carries validated spec arguments into a Builder.
type BuildArgs = compress.BuildArgs

// Policy maps each gradient bucket to the spec that synchronizes it.
type Policy = compress.Policy

// PolicyBuilder constructs a policy from its spec arguments.
type PolicyBuilder = compress.PolicyBuilder

// BucketInfo is the bucket metadata a Policy keys its choice on.
type BucketInfo = compress.BucketInfo

// Fabric is an α–β network model used to price synchronization time.
type Fabric = netsim.Fabric

// TwoTier is a hierarchical network model: fast intra-node links, slow
// inter-node links. It prices the Topology two-level schedules.
type TwoTier = netsim.TwoTier

// Pricer is the interface both Fabric and TwoTier satisfy; every
// Result.ModeledIterSec* helper accepts either.
type Pricer = netsim.Pricer

// Schedule is a complete synchronization plan — bucket boundaries,
// per-bucket algorithm specs, topology and overlap — typically emitted by
// BuildSchedule (the cost-model-driven planner) and consumed by
// TrainConfig.Schedule.
type Schedule = plan.Schedule

// PlanOptions configures BuildSchedule: the worker count, the network model
// the plan is priced on, and optional candidate/budget/width pins.
type PlanOptions = plan.Options

// Result is a completed training run.
type Result = cluster.Result

// EpochStats is one epoch's loss and held-out metric.
type EpochStats = cluster.EpochStats

// IB100 returns the paper's 100 Gbps InfiniBand fabric model.
func IB100() Fabric { return netsim.IB100() }

// TCP10G returns a commodity 10 Gbps Ethernet fabric model.
func TCP10G() Fabric { return netsim.TCP10G() }

// TwoTierIB100 returns the default hierarchical network model for nodes of
// the given width: NVLink-class intra-node links, 100 Gbps InfiniBand
// between nodes.
func TwoTierIB100(ranksPerNode int) TwoTier { return netsim.TwoTierIB100(ranksPerNode) }

// TwoTierTCP10G is TwoTierIB100 with commodity 10 GbE between nodes.
func TwoTierTCP10G(ranksPerNode int) TwoTier { return netsim.TwoTierTCP10G(ranksPerNode) }

// Register adds an algorithm to the spec registry under the given name —
// the extension point for third-party compressors. Registered names are
// immediately usable in Spec/Policy strings, the CLIs and the bench sweeps.
// It panics on duplicate or invalid names (registration is init-time
// wiring).
func Register(name string, b Builder) { compress.Register(name, b) }

// RegisterPolicy adds a per-bucket policy to the policy registry. usage is
// the signature unknown-policy errors and CLI flag help print (e.g.
// "mixed(big=spec, small=spec, threshold=bytes)").
func RegisterPolicy(name, usage string, b PolicyBuilder) {
	compress.RegisterPolicy(name, usage, b)
}

// Parse parses an algorithm spec string ("topk(density=0.01)",
// "periodic(qsgd(levels=8), interval=4)") without building it.
func Parse(src string) (*Spec, error) { return compress.Parse(src) }

// ParsePolicy parses and builds a per-bucket policy spec ("uniform(a2sgd)",
// "mixed(big=a2sgd, small=dense, threshold=64KiB)", "bylayer(...)"). A
// plain algorithm spec is accepted as shorthand for uniform(spec).
func ParsePolicy(src string) (Policy, error) { return compress.ParsePolicy(src) }

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string { return compress.Registered() }

// AlgorithmUsage lists every registered algorithm's spec signature
// ("topk(density=float)"), sorted by name.
func AlgorithmUsage() []string { return compress.Usage() }

// Policies lists the registered policy names, sorted.
func Policies() []string { return compress.Policies() }

// PolicyUsage lists the built-in policy signatures.
func PolicyUsage() []string { return compress.PolicyUsage() }

// Lookup returns the registered builder for an algorithm name.
func Lookup(name string) (Builder, bool) { return compress.LookupBuilder(name) }

// EvaluatedAlgorithms lists the five methods of the paper's evaluation in
// figure-legend order.
func EvaluatedAlgorithms() []string { return compress.Evaluated() }

// NewAlgorithm builds an algorithm from a spec string. Options.N must be
// set; spec parameters override the Options defaults.
func NewAlgorithm(spec string, o Options) (Algorithm, error) {
	return compress.ParseBuild(spec, o)
}

// DefaultOptions mirrors the paper's hyperparameters (density 0.001 for the
// sparsifiers, QSGD level 4) for an n-parameter model.
func DefaultOptions(n int) Options { return compress.DefaultOptions(n) }

// Periodic wraps any algorithm with round reduction: workers synchronize
// only every interval-th step (local-SGD style in between) — the
// communication-reduction composition the paper's conclusion suggests.
// The spec grammar spells it "periodic(inner, interval=k)".
func Periodic(inner Algorithm, interval int) Algorithm {
	return compress.NewPeriodic(inner, interval)
}

// TrainConfig configures a distributed training run through the façade.
type TrainConfig struct {
	// Family selects the model: "fnn3", "vgg16", "resnet20", "lstm".
	Family string
	// Spec selects gradient synchronization as an algorithm spec string:
	// "a2sgd", "topk(density=0.01)", "periodic(qsgd(levels=8), interval=4)".
	// See Algorithms() / AlgorithmUsage(). Empty defaults to "a2sgd" unless
	// Algorithm or Policy is set.
	Spec string
	// Policy selects gradient synchronization per bucket: "uniform(spec)",
	// "mixed(big=a2sgd, small=dense, threshold=64KiB)" or
	// "bylayer(pattern=spec, ..., default=spec)". Pair it with BucketBytes —
	// with a single whole-model bucket every policy degenerates to the one
	// spec it picks for bucket 0. Mutually exclusive with Spec/Algorithm.
	//
	// "auto" (or "auto(spec, spec, ...)" with an explicit candidate list)
	// hands the whole configuration to the cost-model planner instead:
	// bucket boundaries, per-bucket specs and — when Topology is unset —
	// the hierarchy width are derived from the netsim price of the run
	// (plan.Build), and the run uses the overlapped pipeline. BucketBytes
	// and Topology, when set alongside "auto", pin those axes of the search.
	Policy string
	// Algorithm is the legacy spelling of Spec and keeps working (it also
	// accepts full spec strings).
	//
	// Deprecated: use Spec.
	Algorithm string
	// Workers is the data-parallel width (default 1).
	Workers int
	// Epochs, StepsPerEpoch, BatchPerWorker bound the run (defaults 1/10/16).
	Epochs, StepsPerEpoch, BatchPerWorker int
	// Seed fixes model init and data (default 1).
	Seed uint64
	// Momentum for the SGD optimizer (Table 1 runs use 0.9).
	Momentum float32
	// Density / QuantLevels override the paper defaults when non-zero. They
	// lower onto the legacy Algorithm spec ("topk" + Density 0.01 builds
	// exactly "topk(density=0.01)") and are rejected alongside Spec/Policy,
	// which carry their parameters inline.
	//
	// Deprecated: write density= / levels= inside Spec.
	Density     float64
	QuantLevels int
	// HistIters captures Figure-1 gradient histograms at these steps.
	HistIters []int
	// TCP runs the worker group over real loopback TCP sockets instead of
	// the in-process channel fabric. Results are identical (the collectives
	// are transport agnostic); this exercises the network stack end to end.
	TCP bool
	// Faults injects deterministic, seeded network faults into the worker
	// group — a faultnet scenario string such as
	//
	//	"delay(link=0-1, alpha=200us, beta=1ns/B) straggler(rank=2, x3) crash(rank=3, step=5)"
	//
	// (see a2sgd/internal/comm/faultnet for the full grammar: delay, bw,
	// loss, dup, reorder, straggler, crash, stall, flap, partition, plus the
	// seed/deadline/retry pseudo-rules). Composes with TCP: faults wrap
	// whichever transport the run uses. Recoverable scenarios perturb timing
	// only — results stay bitwise identical to the fault-free run — while
	// crash/stall scenarios make Train return a step-scoped error within the
	// scenario deadline instead of hanging. Empty disables injection.
	Faults string
	// LRScale multiplies the Table-1 learning-rate schedule (reduced-scale
	// calibration; 0 = default).
	LRScale float64
	// BucketBytes partitions the gradient into layer-granular buckets of at
	// most this many bytes, each with its own algorithm instance (per-bucket
	// error feedback, seeds and A2SGD means) and its own collective. 0 keeps
	// the whole-model single bucket.
	BucketBytes int
	// Overlap pipelines bucket i's synchronization behind the gather+encode
	// of bucket i+1 (DDP-style comm/compute overlap). Results are bitwise
	// identical to the synchronous path for the same bucket plan.
	Overlap bool
	// Concurrency is the number of tag-space contexts the overlap path may
	// use for concurrent bucket exchanges (comm.SetConcurrency, max 8).
	// 0 or 1 keeps the deterministic single-worker mode. Requires Overlap.
	// Per-bucket arithmetic is unchanged, so concurrent runs converge
	// identically; only the wire interleaving differs.
	Concurrency int
	// Interleave launches each bucket's exchange from inside the backward
	// pass as soon as backprop finalizes the bucket's layers (deepest
	// first), hiding synchronization behind the remaining compute as well
	// as behind encode. Requires Overlap.
	Interleave bool
	// Topology is the two-level hierarchy width in ranks per node: when > 1
	// every collective runs intra-node first, then across node leaders,
	// then broadcasts back (comm.SetTopology). Consecutive ranks share a
	// node. 0 or 1 keeps the flat topology. Hierarchical runs are
	// convergence-equivalent to flat runs (float tolerance, not bitwise)
	// and deterministic for a fixed seed.
	Topology int
	// Allreduce selects the dense/scalar allreduce algorithm: "auto"
	// (default), "ring", or "recdouble".
	Allreduce string
	// CheckpointEvery delivers a full-state training snapshot every k global
	// steps (in addition to the snapshot at the start of the run), bounding
	// the work lost to a failure. 0 disables periodic snapshots.
	CheckpointEvery int
	// SnapshotPath persists every delivered snapshot to this file in the
	// versioned A2SV format (written atomically: temp file + rename), so a
	// later run can resume from the newest boundary via ResumePath.
	SnapshotPath string
	// ResumePath restores a run from an A2SV snapshot file instead of
	// initializing from Seed. The snapshot's world size wins over Workers;
	// Family, Seed and the step grid must match the snapshot's.
	ResumePath string
	// Schedule runs a pre-planned synchronization schedule (BuildSchedule's
	// output) instead of the hand-tuned knobs: bucket boundaries, per-bucket
	// specs, topology and overlap all come from the schedule, so Spec,
	// Policy, Algorithm, Density, QuantLevels, BucketBytes, Overlap and
	// Topology must stay unset.
	Schedule *Schedule
}

// allreduceByName maps TrainConfig.Allreduce to the comm algorithm.
var allreduceByName = map[string]comm.AllreduceAlgorithm{
	"":          comm.AlgoAuto,
	"auto":      comm.AlgoAuto,
	"ring":      comm.AlgoRing,
	"recdouble": comm.AlgoRecursiveDoubling,
}

// lowerLegacy attaches the deprecated Density/QuantLevels overrides to the
// root of a legacy Algorithm spec, when the root accepts the corresponding
// parameter (algorithms that never used the knob keep ignoring it, as the
// old flat config did). Explicit spec parameters win over the legacy
// fields. FormatFloat(-1) round-trips exactly, so the lowered spec builds
// the bit-identical algorithm the flat fields built.
func lowerLegacy(s *compress.Spec, density float64, quantLevels int) {
	b, ok := compress.LookupBuilder(s.Name)
	if !ok {
		return // CheckSpec reports the unknown name with the full usage list
	}
	accepts := func(name string) bool {
		for _, p := range b.Params {
			if p.Name == name {
				return true
			}
		}
		return false
	}
	if density > 0 && accepts("density") {
		s.SetKeyed("density", strconv.FormatFloat(density, 'g', -1, 64))
	}
	if quantLevels > 0 && accepts("levels") {
		s.SetKeyed("levels", strconv.Itoa(quantLevels))
	}
}

// resolvePolicy turns the TrainConfig algorithm fields — Spec, Policy, or
// the deprecated Algorithm/Density/QuantLevels — into one validated Policy.
func (tc TrainConfig) resolvePolicy() (compress.Policy, error) {
	set := 0
	for _, s := range []string{tc.Spec, tc.Policy, tc.Algorithm} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("a2sgd: set at most one of Spec, Policy and Algorithm (got Spec=%q Policy=%q Algorithm=%q)",
			tc.Spec, tc.Policy, tc.Algorithm)
	}
	legacyKnobs := tc.Density > 0 || tc.QuantLevels > 0
	if tc.Policy != "" {
		if legacyKnobs {
			return nil, fmt.Errorf("a2sgd: Density/QuantLevels cannot combine with Policy — write density=/levels= inside the policy's specs")
		}
		return compress.ParsePolicy(tc.Policy)
	}
	if tc.Spec != "" && legacyKnobs {
		return nil, fmt.Errorf("a2sgd: Density/QuantLevels cannot combine with Spec — write density=/levels= inside the spec")
	}
	src := tc.Spec
	if src == "" {
		src = tc.Algorithm
	}
	if src == "" {
		src = "a2sgd"
	}
	spec, err := compress.Parse(src)
	if err != nil {
		return nil, err
	}
	// The legacy knobs lower onto bare algorithm names only — the shape the
	// old flat config could express. A parameterized or wrapped Algorithm
	// spec carries its own parameters, and silently dropping the knobs
	// there would train the wrong hyperparameters.
	if legacyKnobs && len(spec.Args) > 0 {
		return nil, fmt.Errorf("a2sgd: Density/QuantLevels only combine with a bare legacy Algorithm name, not %q — write density=/levels= inside the spec", src)
	}
	lowerLegacy(spec, tc.Density, tc.QuantLevels)
	return compress.BuildPolicy(spec)
}

// Train runs data-parallel training with the configured algorithm spec,
// per-bucket policy or pre-planned schedule and returns rank 0's view of
// the run.
func Train(tc TrainConfig) (*Result, error) {
	if tc.Seed == 0 {
		tc.Seed = 1
	}
	allreduce, ok := allreduceByName[tc.Allreduce]
	if !ok {
		return nil, fmt.Errorf("a2sgd: unknown allreduce %q (have auto, ring, recdouble)", tc.Allreduce)
	}
	if tc.Schedule != nil {
		if tc.Spec != "" || tc.Policy != "" || tc.Algorithm != "" || tc.Density > 0 || tc.QuantLevels > 0 ||
			tc.BucketBytes != 0 || tc.Overlap || tc.Topology != 0 {
			return nil, fmt.Errorf("a2sgd: Schedule carries the algorithm, bucket, overlap and topology knobs — leave Spec/Policy/Algorithm/Density/QuantLevels/BucketBytes/Overlap/Topology unset")
		}
		return trainSchedule(tc, tc.Schedule, allreduce)
	}
	pol, err := tc.resolvePolicy()
	if err != nil {
		return nil, err
	}
	// The auto policy is the planner's front door: derive the full schedule
	// from the netsim price and run that instead of the flat knobs.
	if ap, isAuto := pol.(*compress.AutoPolicy); isAuto {
		sched, err := autoSchedule(tc, ap)
		if err != nil {
			return nil, err
		}
		return trainSchedule(tc, sched, allreduce)
	}
	// Pre-build every spec the policy can return, so construction errors
	// (out-of-range parameters, unregistered names) surface here and not
	// inside the worker group.
	for _, s := range pol.Specs() {
		if _, err := compress.Build(s, compress.DefaultOptions(4)); err != nil {
			return nil, err
		}
	}
	cfg, err := clusterConfig(tc)
	if err != nil {
		return nil, err
	}
	cfg.BucketBytes = tc.BucketBytes
	cfg.Overlap = tc.Overlap
	cfg.Topology = tc.Topology
	cfg.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
		o := compress.DefaultOptions(info.Params)
		// compress.BucketSeed: bucket 0 keeps the historical per-rank seed
		// so the default single-bucket run reproduces pre-bucketing results
		// exactly; later buckets decorrelate their stochastic RNG.
		o.Seed = compress.BucketSeed(tc.Seed, rank, info.Index)
		o.Allreduce = allreduce
		a, err := compress.Build(pol.SpecFor(info), o)
		if err != nil {
			// Every reachable spec was pre-built above.
			panic(fmt.Sprintf("a2sgd: pre-validated spec failed to build: %v", err))
		}
		return a
	}
	res, err := cluster.Train(cfg)
	if err != nil {
		return nil, err
	}
	res.Policy = pol.Name()
	return res, nil
}

// clusterConfig copies the schedule-independent TrainConfig fields.
func clusterConfig(tc TrainConfig) (cluster.Config, error) {
	cfg := cluster.Config{
		Workers:        tc.Workers,
		Family:         tc.Family,
		Epochs:         tc.Epochs,
		StepsPerEpoch:  tc.StepsPerEpoch,
		BatchPerWorker: tc.BatchPerWorker,
		Seed:           tc.Seed,
		Momentum:       tc.Momentum,
		HistIters:      tc.HistIters,
		LRScale:        tc.LRScale,
		Concurrency:    tc.Concurrency,
		Interleave:     tc.Interleave,
	}
	cfg.CheckpointEvery = tc.CheckpointEvery
	if path := tc.SnapshotPath; path != "" {
		cfg.SnapshotSink = func(rs *cluster.RunState) error {
			return elastic.WriteSnapshotFile(path, rs)
		}
	}
	if tc.ResumePath != "" {
		rs, err := elastic.ReadSnapshotFile(tc.ResumePath)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("a2sgd: ResumePath: %w", err)
		}
		cfg.Resume = rs
		cfg.Workers = rs.World
	}
	if tc.Faults != "" {
		sc, err := faultnet.Parse(tc.Faults)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("a2sgd: Faults: %w", err)
		}
		cfg.GroupRunner = faultnet.GroupRunner(sc, tc.TCP)
	} else if tc.TCP {
		cfg.GroupRunner = tcpnet.RunGroup
	}
	return cfg, nil
}

// trainSchedule runs a pre-planned schedule: the cluster consumes its
// bounds/topology/overlap, and each bucket's algorithm is built from the
// scheduled spec with the same canonical seed derivation the policy path
// uses — which is what makes a schedule lowered from legacy knobs
// (plan.Lower) reproduce the flat configuration bitwise.
func trainSchedule(tc TrainConfig, sched *Schedule, allreduce comm.AllreduceAlgorithm) (*Result, error) {
	cfg, err := clusterConfig(tc)
	if err != nil {
		return nil, err
	}
	cfg.Schedule = sched
	cfg.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
		o := compress.DefaultOptions(info.Params)
		o.Seed = compress.BucketSeed(tc.Seed, rank, info.Index)
		o.Allreduce = allreduce
		a, err := compress.Build(sched.Specs[info.Index], o)
		if err != nil {
			// cluster.Train pre-validates every scheduled spec.
			panic(fmt.Sprintf("a2sgd: pre-validated schedule spec failed to build: %v", err))
		}
		return a
	}
	return cluster.Train(cfg)
}

// autoSchedule plans the schedule the "auto" policy stands for: the run's
// worker count, the auto candidates, and the default IB100 price law —
// switching to the hierarchical TwoTierIB100 pair when Topology pins a
// width. BucketBytes, when set, pins the bucket-budget axis. Auto runs
// always use the overlapped pipeline (that is the makespan being minimized).
func autoSchedule(tc TrainConfig, ap *compress.AutoPolicy) (*Schedule, error) {
	workers := tc.Workers
	if workers <= 0 {
		workers = 1
	}
	o := plan.Options{Workers: workers, Pricer: netsim.IB100()}
	if tc.Topology > 1 {
		o.Pricer = netsim.TwoTierIB100(tc.Topology)
		o.RanksPerNode = []int{tc.Topology}
	}
	if tc.BucketBytes > 0 {
		o.BucketBudgets = []int{tc.BucketBytes}
	}
	for _, s := range ap.Candidates() {
		o.Candidates = append(o.Candidates, s.String())
	}
	return BuildSchedule(tc.Family, o)
}

// BuildSchedule runs the cost-model planner for a model family: it derives
// the family's parameter segments at reduced scale and asks plan.Build for
// the cheapest modelled schedule — bucket boundaries sized against the
// priced tier, per-bucket specs minimizing the pipelined makespan, and (for
// TwoTier pricers) the cheapest ranks-per-node width.
func BuildSchedule(family string, o PlanOptions) (*Schedule, error) {
	m, err := models.New(models.Config{Family: family, Seed: 1, Reduced: true})
	if err != nil {
		return nil, err
	}
	return plan.Build(m.ParamSegments(), o)
}

// Families lists the evaluation model families (Table 1).
func Families() []string { return models.Families() }

// PaperParamCount returns the Table 1 parameter count for a family.
func PaperParamCount(family string) (int, error) { return models.PaperParamCount(family) }
