package a2sgd

// Benchmarks regenerating each of the paper's tables and figures, plus the
// ablation benches called out in DESIGN.md §6. Run all of them with
//
//	go test -bench=. -benchmem
//
// The full paper-scale sweeps live behind cmd/a2sgdbench; these benches use
// sizes that finish in seconds while preserving every ordering the paper
// reports.

import (
	"io"
	"sync"
	"testing"

	"a2sgd/internal/bench"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/tcpnet"
	"a2sgd/internal/compress"
	"a2sgd/internal/core"
	"a2sgd/internal/netsim"
	"a2sgd/internal/stats"
	"a2sgd/internal/tensor"
)

func randGrad(n int) []float32 {
	g := make([]float32, n)
	tensor.NewRNG(uint64(n)+7).NormVec(g, 0, 0.05)
	return g
}

// ---- Figure 1: gradient-distribution capture ----

func BenchmarkFigure1Histogram(b *testing.B) {
	g := randGrad(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := stats.NewHistogram(-0.25, 0.25, 101)
		h.AddSlice(g)
	}
}

func BenchmarkFigure1TrainingCapture(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1(io.Discard, 1, 5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2: compression compute time per algorithm ----

func benchEncode(b *testing.B, name string, n int) {
	alg, err := NewAlgorithm(name, DefaultOptions(n))
	if err != nil {
		b.Fatal(err)
	}
	g := randGrad(n)
	alg.Encode(g) // warm-up allocations
	b.SetBytes(int64(4 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Encode(g)
	}
}

func BenchmarkFigure2TopK1M(b *testing.B)      { benchEncode(b, "topk", 1_000_000) }
func BenchmarkFigure2QSGD1M(b *testing.B)      { benchEncode(b, "qsgd", 1_000_000) }
func BenchmarkFigure2GaussianK1M(b *testing.B) { benchEncode(b, "gaussiank", 1_000_000) }
func BenchmarkFigure2A2SGD1M(b *testing.B)     { benchEncode(b, "a2sgd", 1_000_000) }
func BenchmarkFigure2TopK10M(b *testing.B)     { benchEncode(b, "topk", 10_000_000) }
func BenchmarkFigure2QSGD10M(b *testing.B)     { benchEncode(b, "qsgd", 10_000_000) }
func BenchmarkFigure2A2SGD10M(b *testing.B)    { benchEncode(b, "a2sgd", 10_000_000) }

// ---- Hot path: steady-state ns/op and allocs/op on vgg16-scale buckets ----
//
// These benchmarks pin the zero-allocation contract (ARCHITECTURE.md "Memory
// discipline & hot path"): after the warm-up call grows instance scratch,
// encode/decode/sync run without touching the allocator. CI smokes them with
// `go test -bench=HotPath -benchtime=1x`; `a2sgdbench -experiment hotpath
// -json BENCH_hotpath.json` records the trajectory per PR.

// hotN is the vgg16-scale bucket: 1 M float32 elements = 4 MiB.
const hotN = 1 << 20

func benchHotEncode(b *testing.B, name string) {
	alg, err := NewAlgorithm(name, DefaultOptions(hotN))
	if err != nil {
		b.Fatal(err)
	}
	g := randGrad(hotN)
	alg.Encode(g) // warm-up: grows instance scratch once
	b.SetBytes(4 * hotN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Encode(g)
	}
}

func BenchmarkHotPathEncodeTopK(b *testing.B)      { benchHotEncode(b, "topk") }
func BenchmarkHotPathEncodeGaussianK(b *testing.B) { benchHotEncode(b, "gaussiank") }
func BenchmarkHotPathEncodeQSGD(b *testing.B)      { benchHotEncode(b, "qsgd") }
func BenchmarkHotPathEncodeA2SGD(b *testing.B)     { benchHotEncode(b, "a2sgd") }

func BenchmarkHotPathDecodeQSGD(b *testing.B) {
	o := DefaultOptions(hotN)
	q := compress.NewQSGD(o)
	g := randGrad(hotN)
	p := q.Encode(g)
	stream := append([]float32(nil), p.Data...) // retained copy (payload contract)
	dst := make([]float32, hotN)
	q.Decode(stream, dst)
	b.SetBytes(4 * hotN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Decode(stream, dst)
	}
}

// BenchmarkHotPathInprocAllreduce is the warmed collective: 4 ranks in
// lockstep on a persistent fabric, ring algorithm (the bandwidth-bound case).
func BenchmarkHotPathInprocAllreduce(b *testing.B) {
	const workers = 4
	f := comm.NewInprocFabric(workers)
	defer f.Shutdown()
	cs := f.Communicators()
	vs := make([][]float32, workers)
	for r := range vs {
		vs[r] = randGrad(hotN)
	}
	run := func(iters int) {
		var wg sync.WaitGroup
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if err := cs[r].AllreduceMean(vs[r], comm.AlgoRing); err != nil {
						b.Error(err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	}
	run(1) // warm-up: grows communicator scratch
	b.SetBytes(4 * hotN)
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}

// benchHotTCP streams b.N framed 4 MiB buckets from rank 0 to rank 1 over
// the loopback mesh — the transport-level cost of one bucket's wire hop.
func BenchmarkHotPathTCPSendRecv4MiB(b *testing.B) {
	ts, shutdown, err := tcpnet.NewLocalMesh(2)
	if err != nil {
		b.Skip(err)
	}
	defer shutdown()
	src := randGrad(hotN)
	dst := make([]float32, hotN)
	run := func(iters int) error {
		done := make(chan error, 1)
		go func() {
			for i := 0; i < iters; i++ {
				if err := ts[1].Recv(0, 7, dst); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		for i := 0; i < iters; i++ {
			if err := ts[0].Send(1, 7, src); err != nil {
				return err
			}
		}
		return <-done
	}
	if err := run(1); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 * hotN)
	b.ReportAllocs()
	b.ResetTimer()
	if err := run(b.N); err != nil {
		b.Fatal(err)
	}
}

// ---- Figure 3 (and 6–8): convergence step per algorithm ----

func benchTrainStep(b *testing.B, algo string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Train(TrainConfig{
			Family: "fnn3", Algorithm: algo, Workers: 4,
			Epochs: 1, StepsPerEpoch: 4, BatchPerWorker: 8, Momentum: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Dense(b *testing.B)     { benchTrainStep(b, "dense") }
func BenchmarkFigure3A2SGD(b *testing.B)     { benchTrainStep(b, "a2sgd") }
func BenchmarkFigure3TopK(b *testing.B)      { benchTrainStep(b, "topk") }
func BenchmarkFigure3GaussianK(b *testing.B) { benchTrainStep(b, "gaussiank") }
func BenchmarkFigure3QSGD(b *testing.B)      { benchTrainStep(b, "qsgd") }

// ---- Figure 4: one synchronization round at paper-like payloads ----

func benchSync(b *testing.B, algo string, n, workers int) {
	grads := make([][]float32, workers)
	for r := range grads {
		grads[r] = randGrad(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		f := comm.NewInprocFabric(workers)
		cs := f.Communicators()
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				o := DefaultOptions(n)
				o.Seed = uint64(r + 1)
				alg, err := NewAlgorithm(algo, o)
				if err != nil {
					b.Error(err)
					return
				}
				g := append([]float32(nil), grads[r]...)
				if _, err := compress.Sync(alg, g, cs[r]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
		f.Shutdown()
	}
}

func BenchmarkFigure4SyncDense256K(b *testing.B) { benchSync(b, "dense", 256_000, 4) }
func BenchmarkFigure4SyncA2SGD256K(b *testing.B) { benchSync(b, "a2sgd", 256_000, 4) }
func BenchmarkFigure4SyncTopK256K(b *testing.B)  { benchSync(b, "topk", 256_000, 4) }
func BenchmarkFigure4SyncQSGD256K(b *testing.B)  { benchSync(b, "qsgd", 256_000, 4) }

// ---- Figure 5 / Table 2: the full iteration-pricing model ----

func BenchmarkFigure5IterModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := bench.NewIterModel(netsim.IB100(), 1000, nil)
		if err != nil {
			b.Fatal(err)
		}
		bench.Figure4(io.Discard, m, nil)
		bench.Figure5(io.Discard, m, nil)
	}
}

func BenchmarkTable2(b *testing.B) {
	m, err := bench.NewIterModel(netsim.IB100(), 1000, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, m)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §6) ----

// Allreduce vs Allgather exchange for a sparse payload (§4.4 of the paper).
func BenchmarkAblationExchangeAllgather(b *testing.B) {
	n := 100_000
	payload := make([]float32, 2*100) // k=100 pairs
	err := comm.RunGroup(4, func(c *comm.Communicator) error {
		for i := 0; i < b.N; i++ {
			if _, _, err := c.AllgatherV(payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = n
}

func BenchmarkAblationExchangeAllreduce(b *testing.B) {
	// The dense-allreduce alternative for the same logical exchange: the
	// full n-vector must travel.
	n := 100_000
	err := comm.RunGroup(4, func(c *comm.Communicator) error {
		v := make([]float32, n)
		for i := 0; i < b.N; i++ {
			if err := c.AllreduceSum(v, comm.AlgoRing); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// Error feedback on vs off for A2SGD (variance-retention cost).
func BenchmarkAblationA2SGDWithEF(b *testing.B) {
	a := core.New(1_000_000)
	g := randGrad(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Encode(g)
	}
}

func BenchmarkAblationA2SGDNoEF(b *testing.B) {
	a := core.New(1_000_000, core.WithoutErrorFeedback())
	g := randGrad(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Encode(g)
	}
}

// Faithful (explicit ε vector) vs fused single-pass reconstruction.
func benchA2SGDMode(b *testing.B, mode core.Mode) {
	n := 1_000_000
	g := randGrad(n)
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		a := core.New(n, core.WithMode(mode))
		buf := append([]float32(nil), g...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, g)
			if _, err := compress.Sync(a, buf, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationA2SGDFaithful(b *testing.B) { benchA2SGDMode(b, core.Faithful) }
func BenchmarkAblationA2SGDFused(b *testing.B)    { benchA2SGDMode(b, core.Fused) }

// One-mean vs two-level means (the "over-simplification" ablation).
func BenchmarkAblationOneMean(b *testing.B) {
	a := core.New(1_000_000, core.WithOneMean())
	g := randGrad(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Encode(g)
	}
}

// Allreduce vs Allgather for A2SGD's own two-scalar exchange — the paper's
// §4.4 planned optimization.
func benchA2SGDExchange(b *testing.B, opts ...core.Option) {
	n := 4096
	g := randGrad(n)
	err := comm.RunGroup(4, func(c *comm.Communicator) error {
		a := core.New(n, opts...)
		buf := append([]float32(nil), g...)
		for i := 0; i < b.N; i++ {
			copy(buf, g)
			if _, err := compress.Sync(a, buf, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationA2SGDViaAllreduce(b *testing.B) { benchA2SGDExchange(b) }
func BenchmarkAblationA2SGDViaAllgather(b *testing.B) {
	benchA2SGDExchange(b, core.WithAllgather())
}

// Periodic (round-reduction) composition: amortized sync every 4 steps.
func BenchmarkAblationPeriodicA2SGD(b *testing.B) {
	n := 256_000
	g := randGrad(n)
	err := comm.RunGroup(4, func(c *comm.Communicator) error {
		alg := compress.NewPeriodic(core.New(n), 4)
		buf := append([]float32(nil), g...)
		for i := 0; i < b.N; i++ {
			copy(buf, g)
			if _, err := compress.Sync(alg, buf, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// Ring vs recursive-doubling allreduce on a bandwidth-bound payload.
func benchAllreduce(b *testing.B, algo comm.AllreduceAlgorithm, n int) {
	err := comm.RunGroup(4, func(c *comm.Communicator) error {
		v := make([]float32, n)
		for i := 0; i < b.N; i++ {
			if err := c.AllreduceSum(v, algo); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationRingAllreduce1M(b *testing.B) { benchAllreduce(b, comm.AlgoRing, 1_000_000) }
func BenchmarkAblationRecDblAllreduce1M(b *testing.B) {
	benchAllreduce(b, comm.AlgoRecursiveDoubling, 1_000_000)
}
func BenchmarkAblationRingAllreduce2(b *testing.B) { benchAllreduce(b, comm.AlgoRing, 2) }
func BenchmarkAblationRecDblAllreduce2(b *testing.B) {
	benchAllreduce(b, comm.AlgoRecursiveDoubling, 2)
}
