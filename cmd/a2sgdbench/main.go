// Command a2sgdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	a2sgdbench -experiment all                 # everything (slow)
//	a2sgdbench -experiment fig2 -maxn 100000000
//	a2sgdbench -experiment fig3 -workers 2,4,8,16 -epochs 10
//	a2sgdbench -experiment fig4 -scale 1       # paper-scale gradients
//	a2sgdbench -experiment table2
//	a2sgdbench -experiment buckets -buckets 0,2048,8192
//	a2sgdbench -experiment hierarchy -workers 8 -topology 1,2,4
//	a2sgdbench -experiment mixed -mixbuckets 4096,16384 \
//	    -policies "uniform(a2sgd);mixed(big=a2sgd, small=dense, threshold=8KiB)"
//	a2sgdbench -experiment auto -scale 10      # cost-model planner vs hand-tuned
//	a2sgdbench -experiment auto -json results.json
//	a2sgdbench -experiment straggler -backup-workers 1
//
// -json writes every executed experiment's structured results (including the
// auto sweep's modelled-vs-chosen plan prices) to a file, so the perf
// trajectory can be tracked across commits; "-" writes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"a2sgd/internal/bench"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	exp := flag.String("experiment", "all", "fig1|fig2|fig3|fig4|fig5|table1|table2|ablation|buckets|hierarchy|mixed|auto|hotpath|chaos|elastic|straggler|all")
	maxN := flag.Int("maxn", 25_000_000, "largest parameter count for fig2")
	scale := flag.Int("scale", 10, "divide paper parameter counts by this for fig4/fig5/table2/auto (1 = full)")
	workersFlag := flag.String("workers", "2,4,8,16", "worker counts for fig3/fig4/fig5")
	epochs := flag.Int("epochs", 8, "epochs for fig1/fig3")
	steps := flag.Int("steps", 12, "steps per epoch for fig3")
	fabricName := flag.String("fabric", "ib100", "network model: ib100|tcp10g")
	bucketsFlag := flag.String("buckets", "0,2048,8192,32768", "bucket byte budgets for the bucket sweep (0 = whole model)")
	topologyFlag := flag.String("topology", "1,2,4", "ranks-per-node widths for the hierarchy sweep (1 = flat)")
	hierBucketsFlag := flag.String("hierbuckets", "0,8192", "bucket byte budgets for the hierarchy sweep")
	algosFlag := flag.String("algos", "",
		"algorithm specs for the buckets/hierarchy/auto sweeps, comma separated (default: the paper's five-method set) — registered: "+
			strings.Join(compress.Usage(), ", "))
	mixBucketsFlag := flag.String("mixbuckets", "4096,16384", "bucket byte budgets for the mixed-policy sweep")
	policiesFlag := flag.String("policies", "",
		"per-bucket policies for the mixed sweep, semicolon separated — "+strings.Join(compress.PolicyUsage(), "; "))
	chaosSeed := flag.Uint64("chaosseed", 11, "scenario + training seed for the chaos matrix")
	chaosTCP := flag.Bool("chaostcp", false, "run the chaos matrix over loopback TCP instead of the in-process fabric")
	backupWorkers := flag.Int("backup-workers", 1, "spare-worker slots for the straggler matrix's recovery case")
	jsonPath := flag.String("json", "", "write executed experiments' structured results as JSON to this file (\"-\" = stdout)")
	comparePath := flag.String("compare", "",
		"compare the hotpath run against the newest entry of this BENCH_hotpath.json trajectory file; exit nonzero on regression")
	compareTol := flag.Float64("comparetol", 10, "regression tolerance for -compare, percent on ns/op (allocs/op must not grow at all)")
	flag.Parse()

	var algos []string
	if *algosFlag != "" {
		for _, a := range strings.Split(*algosFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				algos = append(algos, a)
			}
		}
	}

	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -workers:", err)
		os.Exit(2)
	}
	fabric := netsim.IB100()
	if *fabricName == "tcp10g" {
		fabric = netsim.TCP10G()
	}

	w := os.Stdout
	results := map[string]any{}
	run := func(name string, f func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if out != nil {
			results[name] = out
		}
	}

	run("table1", func() (any, error) { return nil, bench.Table1(w) })
	run("fig1", func() (any, error) {
		return bench.Figure1(w, *epochs, 20, true)
	})
	run("fig2", func() (any, error) {
		sizes := []int{1_000_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000, 100_000_000}
		var trimmed []int
		for _, s := range sizes {
			if s <= *maxN {
				trimmed = append(trimmed, s)
			}
		}
		return bench.Figure2(w, trimmed, 2)
	})
	run("fig3", func() (any, error) {
		return bench.Figure3(w, bench.Figure3Config{
			Workers: workers, Epochs: *epochs, Steps: *steps,
		})
	})

	var iterModel *bench.IterModel
	needIter := func() error {
		if iterModel == nil {
			m, err := bench.NewIterModel(fabric, *scale, nil)
			if err != nil {
				return err
			}
			iterModel = m
		}
		return nil
	}
	run("fig4", func() (any, error) {
		if err := needIter(); err != nil {
			return nil, err
		}
		return bench.Figure4(w, iterModel, workers), nil
	})
	run("fig5", func() (any, error) {
		if err := needIter(); err != nil {
			return nil, err
		}
		return bench.Figure5(w, iterModel, workers), nil
	})
	run("table2", func() (any, error) {
		if err := needIter(); err != nil {
			return nil, err
		}
		return bench.Table2(w, iterModel), nil
	})
	run("ablation", func() (any, error) {
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		return bench.Ablation(w, wk, *epochs)
	})
	run("buckets", func() (any, error) {
		bucketBytes, err := parseInts(*bucketsFlag)
		if err != nil {
			return nil, fmt.Errorf("bad -buckets: %w", err)
		}
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		return bench.BucketSweep(w, bench.BucketSweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			BucketBytes: bucketBytes, Fabric: fabric, Algorithms: algos,
		})
	})
	run("hierarchy", func() (any, error) {
		rpns, err := parseInts(*topologyFlag)
		if err != nil {
			return nil, fmt.Errorf("bad -topology: %w", err)
		}
		bucketBytes, err := parseInts(*hierBucketsFlag)
		if err != nil {
			return nil, fmt.Errorf("bad -hierbuckets: %w", err)
		}
		wk := 8
		if len(workers) > 0 {
			wk = workers[0]
		}
		return bench.HierarchySweep(w, bench.HierarchySweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			RanksPerNode: rpns, BucketBytes: bucketBytes,
			Inter: fabric, Algorithms: algos,
		})
	})
	run("mixed", func() (any, error) {
		mixBuckets, err := parseInts(*mixBucketsFlag)
		if err != nil {
			return nil, fmt.Errorf("bad -mixbuckets: %w", err)
		}
		var policies []string
		if *policiesFlag != "" {
			for _, p := range strings.Split(*policiesFlag, ";") {
				if p = strings.TrimSpace(p); p != "" {
					policies = append(policies, p)
				}
			}
		}
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		return bench.MixedSweep(w, bench.MixedSweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			BucketBytes: mixBuckets, Policies: policies, Fabric: fabric,
		})
	})
	run("auto", func() (any, error) {
		// The planner study is modelled, not trained, so it can afford the
		// widest configured worker count — the narrow ones collapse the
		// two-tier pair onto a single node and hide the topology choice.
		wk := 8
		if len(workers) > 0 {
			wk = workers[0]
			for _, p := range workers[1:] {
				if p > wk {
					wk = p
				}
			}
		}
		return bench.AutoSweep(w, bench.AutoSweepConfig{
			Workers: wk, ParamScale: *scale, Specs: algos,
			TrainFamily: "fnn3", Epochs: *epochs, Steps: *steps,
		})
	})

	run("chaos", func() (any, error) {
		// Seeded fault-injection matrix: recoverable scenarios must train to
		// a checkpoint bitwise identical to the fault-free baseline,
		// crash/stall scenarios must fail within their deadline, and the α–β
		// delay scenarios report measured vs netsim-predicted slowdown.
		return bench.Chaos(w, bench.ChaosConfig{Seed: *chaosSeed, TCP: *chaosTCP})
	})

	run("elastic", func() (any, error) {
		// Elastic-recovery matrix: crash, preempt+rejoin and drain+resume
		// through the membership-epoch supervisor, each checked bitwise
		// against an uninterrupted fixed-world run resumed from the same
		// resharded snapshot.
		return bench.ElasticChaos(w, bench.ElasticConfig{Seed: *chaosSeed, TCP: *chaosTCP})
	})

	run("straggler", func() (any, error) {
		// Straggler-tolerance matrix: an unmitigated slow rank must not
		// change a bit of the result, a promoted backup worker must win back
		// the lost wall clock bitwise, and a degraded fabric must drift the
		// measured α–β estimates into a measured-fabric replan.
		return bench.Straggler(w, bench.StragglerConfig{
			Seed: *chaosSeed, TCP: *chaosTCP, BackupSlots: *backupWorkers,
		})
	})

	var hotRep *bench.HotPathReport
	run("hotpath", func() (any, error) {
		// Steady-state ns/op + allocs/op of the zero-allocation hot path.
		// `a2sgdbench -experiment hotpath -json BENCH_hotpath.json` is how
		// the per-PR perf trajectory file is regenerated (CI uploads it);
		// `-compare BENCH_hotpath.json` gates against its newest entry.
		rep, err := bench.HotPath(w)
		hotRep = rep
		return rep, err
	})

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	}

	if *comparePath != "" {
		if hotRep == nil {
			fmt.Fprintln(os.Stderr, "-compare requires the hotpath experiment to run (use -experiment hotpath or all)")
			os.Exit(2)
		}
		base, err := bench.LoadHotPathBaseline(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\n================ hotpath compare ================\n")
		if n := bench.CompareHotPath(w, hotRep, base, *compareTol); n > 0 {
			os.Exit(1)
		}
	}
}
