// Command a2sgdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	a2sgdbench -experiment all                 # everything (slow)
//	a2sgdbench -experiment fig2 -maxn 100000000
//	a2sgdbench -experiment fig3 -workers 2,4,8,16 -epochs 10
//	a2sgdbench -experiment fig4 -scale 1       # paper-scale gradients
//	a2sgdbench -experiment table2
//	a2sgdbench -experiment buckets -buckets 0,2048,8192
//	a2sgdbench -experiment hierarchy -workers 8 -topology 1,2,4
//	a2sgdbench -experiment mixed -mixbuckets 4096,16384 \
//	    -policies "uniform(a2sgd);mixed(big=a2sgd, small=dense, threshold=8KiB)"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"a2sgd/internal/bench"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	exp := flag.String("experiment", "all", "fig1|fig2|fig3|fig4|fig5|table1|table2|ablation|buckets|hierarchy|mixed|all")
	maxN := flag.Int("maxn", 25_000_000, "largest parameter count for fig2")
	scale := flag.Int("scale", 10, "divide paper parameter counts by this for fig4/fig5/table2 (1 = full)")
	workersFlag := flag.String("workers", "2,4,8,16", "worker counts for fig3/fig4/fig5")
	epochs := flag.Int("epochs", 8, "epochs for fig1/fig3")
	steps := flag.Int("steps", 12, "steps per epoch for fig3")
	fabricName := flag.String("fabric", "ib100", "network model: ib100|tcp10g")
	bucketsFlag := flag.String("buckets", "0,2048,8192,32768", "bucket byte budgets for the bucket sweep (0 = whole model)")
	topologyFlag := flag.String("topology", "1,2,4", "ranks-per-node widths for the hierarchy sweep (1 = flat)")
	hierBucketsFlag := flag.String("hierbuckets", "0,8192", "bucket byte budgets for the hierarchy sweep")
	algosFlag := flag.String("algos", "",
		"algorithm specs for the buckets/hierarchy sweeps, comma separated (default: the paper's five-method set) — registered: "+
			strings.Join(compress.Usage(), ", "))
	mixBucketsFlag := flag.String("mixbuckets", "4096,16384", "bucket byte budgets for the mixed-policy sweep")
	policiesFlag := flag.String("policies", "",
		"per-bucket policies for the mixed sweep, semicolon separated — "+strings.Join(compress.PolicyUsage(), "; "))
	flag.Parse()

	var algos []string
	if *algosFlag != "" {
		for _, a := range strings.Split(*algosFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				algos = append(algos, a)
			}
		}
	}

	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -workers:", err)
		os.Exit(2)
	}
	fabric := netsim.IB100()
	if *fabricName == "tcp10g" {
		fabric = netsim.TCP10G()
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error { return bench.Table1(w) })
	run("fig1", func() error {
		_, err := bench.Figure1(w, *epochs, 20, true)
		return err
	})
	run("fig2", func() error {
		sizes := []int{1_000_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000, 100_000_000}
		var trimmed []int
		for _, s := range sizes {
			if s <= *maxN {
				trimmed = append(trimmed, s)
			}
		}
		_, err := bench.Figure2(w, trimmed, 2)
		return err
	})
	run("fig3", func() error {
		_, err := bench.Figure3(w, bench.Figure3Config{
			Workers: workers, Epochs: *epochs, Steps: *steps,
		})
		return err
	})

	var iterModel *bench.IterModel
	needIter := func() error {
		if iterModel == nil {
			m, err := bench.NewIterModel(fabric, *scale, nil)
			if err != nil {
				return err
			}
			iterModel = m
		}
		return nil
	}
	run("fig4", func() error {
		if err := needIter(); err != nil {
			return err
		}
		bench.Figure4(w, iterModel, workers)
		return nil
	})
	run("fig5", func() error {
		if err := needIter(); err != nil {
			return err
		}
		bench.Figure5(w, iterModel, workers)
		return nil
	})
	run("table2", func() error {
		if err := needIter(); err != nil {
			return err
		}
		bench.Table2(w, iterModel)
		return nil
	})
	run("ablation", func() error {
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		_, err := bench.Ablation(w, wk, *epochs)
		return err
	})
	run("buckets", func() error {
		bucketBytes, err := parseInts(*bucketsFlag)
		if err != nil {
			return fmt.Errorf("bad -buckets: %w", err)
		}
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		_, err = bench.BucketSweep(w, bench.BucketSweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			BucketBytes: bucketBytes, Fabric: fabric, Algorithms: algos,
		})
		return err
	})
	run("hierarchy", func() error {
		rpns, err := parseInts(*topologyFlag)
		if err != nil {
			return fmt.Errorf("bad -topology: %w", err)
		}
		bucketBytes, err := parseInts(*hierBucketsFlag)
		if err != nil {
			return fmt.Errorf("bad -hierbuckets: %w", err)
		}
		wk := 8
		if len(workers) > 0 {
			wk = workers[0]
		}
		_, err = bench.HierarchySweep(w, bench.HierarchySweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			RanksPerNode: rpns, BucketBytes: bucketBytes,
			Inter: fabric, Algorithms: algos,
		})
		return err
	})
	run("mixed", func() error {
		mixBuckets, err := parseInts(*mixBucketsFlag)
		if err != nil {
			return fmt.Errorf("bad -mixbuckets: %w", err)
		}
		var policies []string
		if *policiesFlag != "" {
			for _, p := range strings.Split(*policiesFlag, ";") {
				if p = strings.TrimSpace(p); p != "" {
					policies = append(policies, p)
				}
			}
		}
		wk := 4
		if len(workers) > 0 {
			wk = workers[0]
		}
		_, err = bench.MixedSweep(w, bench.MixedSweepConfig{
			Workers: wk, Epochs: *epochs, Steps: *steps,
			BucketBytes: mixBuckets, Policies: policies, Fabric: fabric,
		})
		return err
	})
}
