// Command a2sgdserve is the elastic training gateway: it supervises N
// concurrent training jobs over one shared worker-slot pool, snapshots full
// training state at checkpoint boundaries, recovers from rank crashes by
// resharding onto the survivors, re-admits preempted ranks at the next
// boundary, and drains to disk on SIGTERM so -resume can pick every job back
// up from its last snapshot.
//
// Usage:
//
//	a2sgdserve -family fnn3 -spec a2sgd -workers 4 -epochs 2 -dir /tmp/ckpt
//	a2sgdserve -jobs jobs.json -pool 8 -dir /tmp/ckpt
//	a2sgdserve -jobs jobs.json -dir /tmp/ckpt -resume     # after a SIGTERM
//	a2sgdserve -workers 4 -faults "preempt(rank=3, step=5)" -checkpoint-every 5
//
// jobs.json is an array of job objects:
//
//	[{"name": "mlp", "family": "fnn3", "spec": "a2sgd", "workers": 4,
//	  "epochs": 2, "steps": 10, "checkpoint_every": 5},
//	 {"name": "cnn", "family": "vgg16", "spec": "topk(density=0.01)",
//	  "workers": 2, "replan": true}]
//
// Each job persists its newest snapshot to -dir/<name>.snap (atomic rewrite
// in the versioned A2SV format); -resume restores any job whose snapshot
// file exists and runs it to completion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"a2sgd"
	"a2sgd/internal/cluster"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/compress"
	_ "a2sgd/internal/core" // registers a2sgd and its ablation variants
	"a2sgd/internal/elastic"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// jobSpec is one job of the gateway's run set (one JSON object in -jobs).
type jobSpec struct {
	Name            string  `json:"name"`
	Family          string  `json:"family"`
	Spec            string  `json:"spec"`
	Workers         int     `json:"workers"`
	Epochs          int     `json:"epochs"`
	Steps           int     `json:"steps"`
	Batch           int     `json:"batch"`
	Seed            uint64  `json:"seed"`
	Momentum        float64 `json:"momentum"`
	BucketBytes     int     `json:"bucket_bytes"`
	CheckpointEvery int     `json:"checkpoint_every"`
	Faults          string  `json:"faults"`
	// Replan hands bucket boundaries and per-bucket specs to the cost-model
	// planner, re-run at every membership epoch's world size.
	Replan bool `json:"replan"`
	// BackupWorkers is the spare-slot budget the escalation ladder can
	// promote a warm clone from when a rank's links degrade.
	BackupWorkers int `json:"backup_workers"`
	// DriftReplan re-plans on the measured fabric when the health monitor's
	// α–β estimates drift from the planning model. Requires Replan.
	DriftReplan bool `json:"drift_replan"`
}

func (js *jobSpec) defaults(i int) {
	if js.Name == "" {
		js.Name = fmt.Sprintf("job%d", i)
	}
	if js.Family == "" {
		js.Family = "fnn3"
	}
	if js.Spec == "" {
		js.Spec = "a2sgd"
	}
	if js.Workers <= 0 {
		js.Workers = 2
	}
	if js.Epochs <= 0 {
		js.Epochs = 1
	}
	if js.Steps <= 0 {
		js.Steps = 10
	}
	if js.Batch <= 0 {
		js.Batch = 8
	}
	if js.Seed == 0 {
		js.Seed = 1
	}
	if js.CheckpointEvery <= 0 {
		js.CheckpointEvery = 5
	}
}

// jobOutcome is one job's terminal state, for the summary table.
type jobOutcome struct {
	name   string
	result *elastic.RunResult
	err    error
}

// buildJob assembles the elastic supervisor for one job spec.
func buildJob(js jobSpec, snapPath string, resume, tcp bool, pool *elastic.Pool, drain <-chan struct{}) (*elastic.Job, error) {
	if _, err := compress.ParseBuild(js.Spec, compress.DefaultOptions(4)); err != nil {
		return nil, fmt.Errorf("job %s: spec: %w", js.Name, err)
	}
	cc := cluster.Config{
		Workers: js.Workers, Family: js.Family,
		Epochs: js.Epochs, StepsPerEpoch: js.Steps, BatchPerWorker: js.Batch,
		Seed: js.Seed, Momentum: float32(js.Momentum),
		CheckpointEvery: js.CheckpointEvery,
	}
	job := &elastic.Job{
		TCP:   tcp,
		Pool:  pool,
		Drain: drain,
		SnapshotSink: func(rs *cluster.RunState) error {
			return elastic.WriteSnapshotFile(snapPath, rs)
		},
	}
	if js.Replan {
		if js.BucketBytes != 0 {
			return nil, fmt.Errorf("job %s: replan derives the bucket plan — leave bucket_bytes unset", js.Name)
		}
		// The planner owns bucket boundaries and per-bucket specs; cur tracks
		// the current epoch's schedule so rescheduled segments build the
		// specs the supervisor just planned.
		var mu sync.Mutex
		var cur *plan.Schedule
		job.Replan = func(world int) (*plan.Schedule, error) {
			s, err := a2sgd.BuildSchedule(js.Family, a2sgd.PlanOptions{Workers: world, Pricer: a2sgd.IB100()})
			if err == nil {
				mu.Lock()
				cur = s
				mu.Unlock()
			}
			return s, err
		}
		if js.DriftReplan {
			// After a drift event the planner prices on the fabric the
			// health monitor measured instead of the static model.
			job.DriftReplan = true
			job.DriftModel = a2sgd.IB100()
			job.ReplanMeasured = func(world int, measured netsim.Fabric) (*plan.Schedule, error) {
				s, err := a2sgd.BuildSchedule(js.Family, a2sgd.PlanOptions{Workers: world, Pricer: measured})
				if err == nil {
					mu.Lock()
					cur = s
					mu.Unlock()
				}
				return s, err
			}
		}
		cc.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
			mu.Lock()
			s := cur
			mu.Unlock()
			o := compress.DefaultOptions(info.Params)
			o.Seed = compress.BucketSeed(js.Seed, rank, info.Index)
			a, err := compress.Build(s.Specs[info.Index], o)
			if err != nil {
				panic(fmt.Sprintf("a2sgdserve: planned spec failed to build: %v", err))
			}
			return a
		}
	} else {
		cc.BucketBytes = js.BucketBytes
		spec := js.Spec
		seed := js.Seed
		cc.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
			o := compress.DefaultOptions(info.Params)
			o.Seed = compress.BucketSeed(seed, rank, info.Index)
			a, err := compress.ParseBuild(spec, o)
			if err != nil {
				panic(fmt.Sprintf("a2sgdserve: pre-validated spec failed to build: %v", err))
			}
			return a
		}
	}
	if js.DriftReplan && !js.Replan {
		return nil, fmt.Errorf("job %s: drift_replan requires replan (the planner owns the schedule it re-prices)", js.Name)
	}
	job.BackupSlots = js.BackupWorkers
	if js.Faults != "" {
		sc, err := faultnet.Parse(js.Faults)
		if err != nil {
			return nil, fmt.Errorf("job %s: faults: %w", js.Name, err)
		}
		job.Scenario = sc
	}
	if resume {
		if _, err := os.Stat(snapPath); err == nil {
			rs, err := elastic.ReadSnapshotFile(snapPath)
			if err != nil {
				return nil, fmt.Errorf("job %s: resume: %w", js.Name, err)
			}
			cc.Resume = rs
			fmt.Printf("[%s] resuming from %s (step %d, world %d)\n", js.Name, snapPath, rs.Step, rs.World)
		}
	}
	job.Config = cc
	return job, nil
}

func main() {
	jobsPath := flag.String("jobs", "", "JSON file with an array of job specs (overrides the single-job flags)")
	family := flag.String("family", "fnn3", "single job: model family")
	spec := flag.String("spec", "a2sgd", "single job: algorithm spec — registered: "+strings.Join(a2sgd.AlgorithmUsage(), ", "))
	workers := flag.Int("workers", 4, "single job: data-parallel worker count")
	epochs := flag.Int("epochs", 1, "single job: epochs")
	steps := flag.Int("steps", 10, "single job: steps per epoch")
	batch := flag.Int("batch", 8, "single job: batch per worker")
	seed := flag.Uint64("seed", 1, "single job: experiment seed")
	momentum := flag.Float64("momentum", 0.9, "single job: SGD momentum")
	bucketBytes := flag.Int("bucket-bytes", 0, "single job: gradient bucket budget (0 = whole model)")
	checkpointEvery := flag.Int("checkpoint-every", 5, "single job: snapshot every k global steps")
	faults := flag.String("faults", "", "single job: fault scenario, e.g. 'deadline(2s) preempt(rank=3, step=5)'")
	replan := flag.Bool("replan", false, "single job: re-plan the schedule at every membership epoch's world size")
	backupWorkers := flag.Int("backup-workers", 0, "single job: spare-slot budget for backup-worker promotion of degraded ranks")
	driftReplan := flag.Bool("drift-replan", false, "single job: re-plan on the measured fabric when it drifts from the model (requires -replan)")
	poolN := flag.Int("pool", 8, "shared worker-slot pool across all jobs")
	dir := flag.String("dir", ".", "snapshot directory (-dir/<name>.snap per job)")
	resume := flag.Bool("resume", false, "resume every job whose snapshot file exists")
	transport := flag.String("transport", "inproc", "worker fabric: inproc|tcp")
	flag.Parse()

	var specs []jobSpec
	if *jobsPath != "" {
		blob, err := os.ReadFile(*jobsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobs:", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(blob, &specs); err != nil {
			fmt.Fprintln(os.Stderr, "jobs:", err)
			os.Exit(2)
		}
		if len(specs) == 0 {
			fmt.Fprintln(os.Stderr, "jobs: empty job list")
			os.Exit(2)
		}
	} else {
		specs = []jobSpec{{
			Family: *family, Spec: *spec, Workers: *workers,
			Epochs: *epochs, Steps: *steps, Batch: *batch,
			Seed: *seed, Momentum: *momentum, BucketBytes: *bucketBytes,
			CheckpointEvery: *checkpointEvery, Faults: *faults, Replan: *replan,
			BackupWorkers: *backupWorkers, DriftReplan: *driftReplan,
		}}
	}
	names := map[string]bool{}
	for i := range specs {
		specs[i].defaults(i)
		if names[specs[i].Name] {
			fmt.Fprintf(os.Stderr, "jobs: duplicate job name %q\n", specs[i].Name)
			os.Exit(2)
		}
		names[specs[i].Name] = true
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "dir:", err)
		os.Exit(2)
	}

	// SIGTERM/SIGINT drains: every job stops at its next checkpoint boundary
	// with a final on-disk snapshot, and a later -resume run picks it up.
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		fmt.Printf("received %v: draining to checkpoint boundaries\n", s)
		close(drain)
	}()

	pool := elastic.NewPool(*poolN)
	outcomes := make([]jobOutcome, len(specs))
	var wg sync.WaitGroup
	for i, js := range specs {
		snapPath := filepath.Join(*dir, js.Name+".snap")
		job, err := buildJob(js, snapPath, *resume, *transport == "tcp", pool, drain)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			rr, err := job.Run()
			outcomes[i] = jobOutcome{name: name, result: rr, err: err}
		}(i, js.Name)
	}
	wg.Wait()
	signal.Stop(sigs)

	failed := 0
	for _, oc := range outcomes {
		switch {
		case oc.err != nil:
			failed++
			fmt.Printf("[%s] FAILED: %v\n", oc.name, oc.err)
		case oc.result.Paused:
			fmt.Printf("[%s] paused at step %d (world %d), snapshot persisted — rerun with -resume\n",
				oc.name, oc.result.Snapshot.Step, oc.result.Snapshot.World)
		default:
			res := oc.result.Result
			last := res.Epochs[len(res.Epochs)-1]
			fmt.Printf("[%s] done: %d epochs, final loss %.4f, restarts %d\n",
				oc.name, len(res.Epochs), last.Loss, oc.result.Restarts)
		}
		for _, e := range oc.result.Events {
			fmt.Printf("[%s]   epoch %d @ step %d, world %d: %s\n", oc.name, e.Epoch, e.Step, e.World, e.Reason)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
