// Command gradhist reproduces Figure 1: it trains FNN-3 and ResNet-20 on a
// single worker, captures the gradient-value distribution at increasing
// iteration counts, and renders ASCII histograms showing the concentration
// around zero that motivates two-level averaging.
package main

import (
	"flag"
	"fmt"
	"os"

	"a2sgd/internal/bench"
)

func main() {
	epochs := flag.Int("epochs", 8, "training epochs")
	steps := flag.Int("steps", 20, "steps per epoch")
	flag.Parse()

	if _, err := bench.Figure1(os.Stdout, *epochs, *steps, true); err != nil {
		fmt.Fprintln(os.Stderr, "gradhist:", err)
		os.Exit(1)
	}
}
