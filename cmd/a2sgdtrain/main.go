// Command a2sgdtrain runs one distributed training configuration and prints
// the per-epoch metric curve plus the synchronization cost breakdown.
//
// Usage:
//
//	a2sgdtrain -family fnn3 -algo a2sgd -workers 8 -epochs 10
//	a2sgdtrain -family lstm -algo topk -workers 4 -density 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"a2sgd"
	"a2sgd/internal/models"
)

func main() {
	family := flag.String("family", "fnn3", "model family: fnn3|vgg16|resnet20|lstm")
	algo := flag.String("algo", "a2sgd", fmt.Sprintf("algorithm: %v", a2sgd.Algorithms()))
	workers := flag.Int("workers", 4, "data-parallel worker count")
	epochs := flag.Int("epochs", 10, "training epochs")
	steps := flag.Int("steps", 16, "steps per epoch")
	batch := flag.Int("batch", 16, "batch size per worker")
	seed := flag.Uint64("seed", 1, "experiment seed")
	momentum := flag.Float64("momentum", 0.9, "SGD momentum")
	density := flag.Float64("density", 0, "sparsifier density override (0 = paper default 0.001)")
	transport := flag.String("transport", "inproc", "worker fabric: inproc|tcp")
	bucketBytes := flag.Int("bucket-bytes", 0, "gradient bucket budget in bytes (0 = whole model)")
	overlap := flag.Bool("overlap", false, "pipeline per-bucket sync behind encode")
	topology := flag.Int("topology", 0, "two-level hierarchy width in ranks per node (0/1 = flat)")
	flag.Parse()

	res, err := a2sgd.Train(a2sgd.TrainConfig{
		Family: *family, Algorithm: *algo, Workers: *workers,
		Epochs: *epochs, StepsPerEpoch: *steps, BatchPerWorker: *batch,
		Seed: *seed, Momentum: float32(*momentum), Density: *density,
		TCP:         *transport == "tcp",
		BucketBytes: *bucketBytes, Overlap: *overlap, Topology: *topology,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	metric := "top-1 accuracy"
	if res.Metric == models.MetricPerplexity {
		metric = "perplexity"
	}
	fmt.Printf("model=%s algo=%s workers=%d params=%d buckets=%d overlap=%v topology=%d\n",
		res.Family, res.Algorithm, res.Workers, res.NumParams, res.Buckets, res.Overlap, res.Topology)
	fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "epoch", "train-loss", "eval-loss", metric, "lr")
	for _, e := range res.Epochs {
		fmt.Printf("%-6d %-12.4f %-12.4f %-12.4f %.5f\n", e.Epoch, e.Loss, e.EvalLoss, e.Metric, e.LR)
	}
	fmt.Printf("\ncost per step (rank 0):\n")
	fmt.Printf("  forward+backward : %8.3f ms\n", res.AvgComputeSec*1000)
	fmt.Printf("  compression      : %8.3f ms\n", res.AvgEncodeSec*1000)
	fmt.Printf("  sync (wall)      : %8.3f ms\n", res.AvgSyncSec*1000)
	fmt.Printf("  payload/worker   : %8d bytes (measured %.0f B/step on the wire)\n",
		res.PayloadBytes, res.BytesPerWorkerPerStep)
	ib := a2sgd.IB100()
	fmt.Printf("  modelled iter    : %8.3f ms on %s\n", res.ModeledIterSec(ib)*1000, ib.Name)
	if res.Topology > 1 {
		two := a2sgd.TwoTierIB100(res.Topology)
		fmt.Printf("  modelled iter    : %8.3f ms on %s (ranks/node=%d)\n",
			res.ModeledIterSec(two)*1000, two.Name, res.Topology)
	}
}
