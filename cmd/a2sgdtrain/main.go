// Command a2sgdtrain runs one distributed training configuration and prints
// the per-epoch metric curve plus the synchronization cost breakdown.
//
// -algo accepts any registered algorithm spec, including parameters and
// wrappers; -policy switches to a per-bucket policy (pair it with
// -bucket-bytes so there is more than one bucket to mix over); -auto hands
// the whole configuration — bucket boundaries, per-bucket specs, topology —
// to the cost-model planner, priced on the -fabric network model.
//
// Usage:
//
//	a2sgdtrain -family fnn3 -algo a2sgd -workers 8 -epochs 10
//	a2sgdtrain -family lstm -algo "topk(density=0.01)" -workers 4
//	a2sgdtrain -algo "periodic(qsgd(levels=8), interval=4)"
//	a2sgdtrain -policy "mixed(big=a2sgd, small=dense, threshold=16KiB)" -bucket-bytes 8192
//	a2sgdtrain -auto -fabric nvlink+tcp10g -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"a2sgd"
	"a2sgd/internal/models"
)

// pricerByName maps the -fabric flag to a network model. width configures
// the node width of the two-tier pairs (0 = the default 4-slot nodes).
func pricerByName(name string, width int) (a2sgd.Pricer, error) {
	if width <= 1 {
		width = 4
	}
	switch name {
	case "ib100":
		return a2sgd.IB100(), nil
	case "tcp10g":
		return a2sgd.TCP10G(), nil
	case "nvlink+ib100":
		return a2sgd.TwoTierIB100(width), nil
	case "nvlink+tcp10g":
		return a2sgd.TwoTierTCP10G(width), nil
	}
	return nil, fmt.Errorf("unknown fabric %q (have ib100, tcp10g, nvlink+ib100, nvlink+tcp10g)", name)
}

func main() {
	family := flag.String("family", "fnn3", "model family: fnn3|vgg16|resnet20|lstm")
	algo := flag.String("algo", "a2sgd",
		"algorithm spec — registered: "+strings.Join(a2sgd.AlgorithmUsage(), ", "))
	policy := flag.String("policy", "",
		"per-bucket policy spec (overrides -algo) — "+strings.Join(a2sgd.PolicyUsage(), ", "))
	workers := flag.Int("workers", 4, "data-parallel worker count")
	epochs := flag.Int("epochs", 10, "training epochs")
	steps := flag.Int("steps", 16, "steps per epoch")
	batch := flag.Int("batch", 16, "batch size per worker")
	seed := flag.Uint64("seed", 1, "experiment seed")
	momentum := flag.Float64("momentum", 0.9, "SGD momentum")
	density := flag.Float64("density", 0, "sparsifier density override (0 = paper default 0.001; prefer density= in -algo)")
	transport := flag.String("transport", "inproc", "worker fabric: inproc|tcp")
	faults := flag.String("faults", "",
		"fault-injection scenario, e.g. 'delay(link=0-1, alpha=200us, beta=1ns/B) straggler(rank=2, x3) crash(rank=3, step=5)' — rules: delay|bw|loss|dup|reorder|straggler|crash|stall|flap|partition, plus seed()/deadline()/retry()")
	bucketBytes := flag.Int("bucket-bytes", 0, "gradient bucket budget in bytes (0 = whole model)")
	overlap := flag.Bool("overlap", false, "pipeline per-bucket sync behind encode")
	concurrency := flag.Int("concurrency", 0, "concurrent bucket exchanges via comm tag-space contexts (0/1 = deterministic; requires -overlap)")
	interleave := flag.Bool("interleave", false, "launch bucket exchanges from inside the backward pass (requires -overlap)")
	topology := flag.Int("topology", 0, "two-level hierarchy width in ranks per node (0/1 = flat)")
	auto := flag.Bool("auto", false, "plan buckets, per-bucket specs and topology from the cost model instead of the knobs above")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot full training state every k global steps (0 = off)")
	snapshotPath := flag.String("snapshot", "", "persist every snapshot to this A2SV file (atomic rewrite)")
	resumePath := flag.String("resume", "", "resume from an A2SV snapshot file (its world size wins over -workers)")
	fabricName := flag.String("fabric", "ib100", "network model the -auto planner prices: ib100|tcp10g|nvlink+ib100|nvlink+tcp10g")
	flag.Parse()

	tc := a2sgd.TrainConfig{
		Family: *family, Workers: *workers,
		Epochs: *epochs, StepsPerEpoch: *steps, BatchPerWorker: *batch,
		Seed: *seed, Momentum: float32(*momentum),
		TCP: *transport == "tcp", Faults: *faults,
	}
	if *auto {
		fabric := *fabricName
		if *topology > 1 && (fabric == "ib100" || fabric == "tcp10g") {
			// A pinned hierarchy width implies a two-tier pair (mirrors the
			// façade's Policy:"auto" behavior): flat fabrics have no
			// ranks-per-node axis to pin.
			fabric = "nvlink+" + fabric
		}
		pricer, err := pricerByName(fabric, *topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan:", err)
			os.Exit(2)
		}
		opts := a2sgd.PlanOptions{Workers: *workers, Pricer: pricer}
		if *topology > 1 {
			opts.RanksPerNode = []int{*topology} // pin the width instead of sweeping
		}
		sched, err := a2sgd.BuildSchedule(*family, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan:", err)
			os.Exit(1)
		}
		fmt.Printf("planned on %s: %d bucket(s), ranks/node=%d, %s\n",
			sched.PricedOn, sched.NumBuckets(), sched.Topology, sched.Composition())
		fmt.Printf("modelled sync: %.3f ms pipelined, %.3f ms serial\n",
			sched.PipelinedSyncSec*1000, sched.SerialSyncSec*1000)
		tc.Schedule = sched
	} else {
		// Density always passes through, so -density alongside -policy (or a
		// parameterized -algo spec) hits the façade's conflict error instead
		// of silently training the default.
		tc.Density = *density
		tc.BucketBytes = *bucketBytes
		tc.Overlap = *overlap
		tc.Topology = *topology
		if *policy != "" {
			tc.Policy = *policy
		} else {
			tc.Algorithm = *algo
		}
	}

	// Runtime-execution knobs: valid with both the manual knobs and a
	// planned schedule.
	tc.Concurrency = *concurrency
	tc.Interleave = *interleave
	tc.CheckpointEvery = *checkpointEvery
	tc.SnapshotPath = *snapshotPath
	tc.ResumePath = *resumePath

	res, err := a2sgd.Train(tc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	metric := "top-1 accuracy"
	if res.Metric == models.MetricPerplexity {
		metric = "perplexity"
	}
	fmt.Printf("model=%s algo=%s policy=%s workers=%d params=%d buckets=%d overlap=%v concurrency=%d interleave=%v topology=%d\n",
		res.Family, res.Algorithm, res.Policy, res.Workers, res.NumParams, res.Buckets, res.Overlap, res.Concurrency, res.Interleave, res.Topology)
	fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "epoch", "train-loss", "eval-loss", metric, "lr")
	for _, e := range res.Epochs {
		fmt.Printf("%-6d %-12.4f %-12.4f %-12.4f %.5f\n", e.Epoch, e.Loss, e.EvalLoss, e.Metric, e.LR)
	}
	fmt.Printf("\ncost per step (rank 0):\n")
	fmt.Printf("  forward+backward : %8.3f ms\n", res.AvgComputeSec*1000)
	fmt.Printf("  compression      : %8.3f ms\n", res.AvgEncodeSec*1000)
	fmt.Printf("  sync (wall)      : %8.3f ms\n", res.AvgSyncSec*1000)
	fmt.Printf("  payload/worker   : %8d bytes (measured %.0f B/step on the wire)\n",
		res.PayloadBytes, res.BytesPerWorkerPerStep)
	ib := a2sgd.IB100()
	fmt.Printf("  modelled iter    : %8.3f ms on %s\n", res.ModeledIterSec(ib)*1000, ib.Name)
	if res.Topology > 1 {
		two := a2sgd.TwoTierIB100(res.Topology)
		fmt.Printf("  modelled iter    : %8.3f ms on %s (ranks/node=%d)\n",
			res.ModeledIterSec(two)*1000, two.Name, res.Topology)
	}
}
