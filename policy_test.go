package a2sgd

import (
	"strings"
	"testing"
)

// smallRun is the shared reduced-scale configuration of the policy tests.
func smallRun() TrainConfig {
	return TrainConfig{
		Family: "fnn3", Workers: 2,
		Epochs: 2, StepsPerEpoch: 4, BatchPerWorker: 8,
		Momentum: 0.9, Seed: 7,
	}
}

// epochsEqual requires two runs to agree bitwise on every per-epoch number.
func epochsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: epoch counts %d vs %d", label, len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		x, y := a.Epochs[i], b.Epochs[i]
		if x.Loss != y.Loss || x.EvalLoss != y.EvalLoss || x.Metric != y.Metric {
			t.Fatalf("%s: epoch %d differs: %+v vs %+v", label, i, x, y)
		}
	}
}

// TestSpecBackCompatBitwise: the deprecated Algorithm/Density/QuantLevels
// fields lower to a spec internally and must produce bitwise-identical runs.
func TestSpecBackCompatBitwise(t *testing.T) {
	cases := []struct {
		name   string
		legacy func(*TrainConfig)
		spec   string
	}{
		{"a2sgd-default", func(tc *TrainConfig) { tc.Algorithm = "a2sgd" }, "a2sgd"},
		{"topk-density", func(tc *TrainConfig) { tc.Algorithm = "topk"; tc.Density = 0.01 }, "topk(density=0.01)"},
		{"qsgd-levels", func(tc *TrainConfig) { tc.Algorithm = "qsgd"; tc.QuantLevels = 8 }, "qsgd(levels=8)"},
		{"dense-ignores-density", func(tc *TrainConfig) { tc.Algorithm = "dense"; tc.Density = 0.5 }, "dense"},
	}
	for _, c := range cases {
		oldCfg := smallRun()
		c.legacy(&oldCfg)
		newCfg := smallRun()
		newCfg.Spec = c.spec
		oldRes, err := Train(oldCfg)
		if err != nil {
			t.Fatalf("%s legacy: %v", c.name, err)
		}
		newRes, err := Train(newCfg)
		if err != nil {
			t.Fatalf("%s spec: %v", c.name, err)
		}
		epochsEqual(t, c.name, oldRes, newRes)
		if oldRes.PayloadBytes != newRes.PayloadBytes {
			t.Errorf("%s: payload %d vs %d", c.name, oldRes.PayloadBytes, newRes.PayloadBytes)
		}
		// A policy spelling of the same spec matches too.
		polCfg := smallRun()
		polCfg.Policy = "uniform(" + c.spec + ")"
		polRes, err := Train(polCfg)
		if err != nil {
			t.Fatalf("%s policy: %v", c.name, err)
		}
		epochsEqual(t, c.name+"/policy", oldRes, polRes)
	}
}

// TestMixedPolicyEndToEnd: the acceptance scenario — a mixed policy with
// BucketBytes set runs end to end on the in-process and TCP fabrics, is
// deterministic per seed, and actually mixes algorithms across buckets.
func TestMixedPolicyEndToEnd(t *testing.T) {
	// fnn3 at an 8 KiB budget buckets into raw sizes [16384, 256, 12288,
	// 7784]B, so threshold=8KiB sends buckets 0 and 2 to the big branch.
	cfg := smallRun()
	cfg.Policy = "mixed(big=a2sgd, small=dense, threshold=8KiB)"
	cfg.BucketBytes = 8192

	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets < 4 {
		t.Fatalf("buckets = %d, want >= 4", res.Buckets)
	}
	if !strings.Contains(res.Algorithm, "a2sgd") || !strings.Contains(res.Algorithm, "dense") {
		t.Errorf("composition %q does not mix a2sgd and dense", res.Algorithm)
	}
	if res.Policy != "mixed(big=a2sgd, small=dense, threshold=8KiB)" {
		t.Errorf("Result.Policy = %q", res.Policy)
	}
	// Mixed payload: 8 B for each big (A2SGD) bucket, raw bytes for each
	// small (dense) bucket — strictly between the uniform extremes.
	if res.PayloadBytes != 8+256+8+7784 {
		t.Errorf("mixed payload %d, want %d", res.PayloadBytes, 8+256+8+7784)
	}
	// Deterministic per seed.
	res2, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "rerun", res, res2)
	// Identical over real TCP sockets (transport-agnostic collectives).
	tcpCfg := cfg
	tcpCfg.TCP = true
	tcpRes, err := Train(tcpCfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "tcp", res, tcpRes)
	// The modelled price laws accept the mixed run.
	f := IB100()
	if res.ModeledIterSecOverlap(f) > res.ModeledIterSecSerial(f) {
		t.Error("overlap law must not exceed the serial law")
	}
	// The overlapped pipeline stays bitwise-identical under a policy.
	ovCfg := cfg
	ovCfg.Overlap = true
	ovRes, err := Train(ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "overlap", res, ovRes)
}

// TestMixedReproducesUniform: when both branches carry the same spec, a
// mixed run is bitwise-identical to the uniform run on the same plan.
func TestMixedReproducesUniform(t *testing.T) {
	mixCfg := smallRun()
	mixCfg.Policy = "mixed(big=a2sgd, small=a2sgd, threshold=8KiB)"
	mixCfg.BucketBytes = 8192
	uniCfg := smallRun()
	uniCfg.Policy = "uniform(a2sgd)"
	uniCfg.BucketBytes = 8192
	mix, err := Train(mixCfg)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Train(uniCfg)
	if err != nil {
		t.Fatal(err)
	}
	epochsEqual(t, "mixed-vs-uniform", mix, uni)
	if mix.PayloadBytes != uni.PayloadBytes {
		t.Errorf("payloads differ: %d vs %d", mix.PayloadBytes, uni.PayloadBytes)
	}
}

// TestByLayerPolicyTrains: the bylayer policy keys on real layer names —
// fnn3's tensors are "Linear(64→64).W" / ".b", so the ".b" pattern routes
// every bucket containing a bias tensor to the dense branch.
func TestByLayerPolicyTrains(t *testing.T) {
	cfg := smallRun()
	cfg.Policy = "bylayer(.b=dense, default=a2sgd)"
	cfg.BucketBytes = 8192
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "dense") || !strings.Contains(res.Algorithm, "a2sgd") {
		t.Errorf("composition %q does not show the bylayer mix", res.Algorithm)
	}
}

// TestWrapperSpecTrains: spec-level composition (round reduction over
// quantization) runs through the façade.
func TestWrapperSpecTrains(t *testing.T) {
	cfg := smallRun()
	cfg.Spec = "periodic(qsgd(levels=8), interval=2)"
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "qsgd-every2" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

// TestTrainFieldConflicts: the redesigned config rejects ambiguous
// combinations instead of guessing.
func TestTrainFieldConflicts(t *testing.T) {
	cases := []struct {
		mutate  func(*TrainConfig)
		wantSub string
	}{
		{func(tc *TrainConfig) { tc.Spec = "a2sgd"; tc.Algorithm = "dense" }, "at most one"},
		{func(tc *TrainConfig) { tc.Spec = "a2sgd"; tc.Policy = "uniform(dense)" }, "at most one"},
		{func(tc *TrainConfig) { tc.Policy = "uniform(topk)"; tc.Density = 0.01 }, "cannot combine with Policy"},
		{func(tc *TrainConfig) { tc.Spec = "topk"; tc.Density = 0.01 }, "cannot combine with Spec"},
		{func(tc *TrainConfig) { tc.Spec = "topk(density=2)" }, "out of range"},
		// Legacy knobs only lower onto bare names — a parameterized or
		// wrapped Algorithm spec must not silently drop them.
		{func(tc *TrainConfig) { tc.Algorithm = "periodic(topk, interval=2)"; tc.Density = 0.01 }, "bare legacy Algorithm name"},
		{func(tc *TrainConfig) { tc.Algorithm = "topk(density=0.05)"; tc.Density = 0.01 }, "bare legacy Algorithm name"},
		{func(tc *TrainConfig) { tc.Policy = "zigzag(a=1)" }, "unknown policy"},
		{func(tc *TrainConfig) { tc.Spec = "periodic(interval=2)" }, "takes 1 inner"},
	}
	for i, c := range cases {
		cfg := smallRun()
		c.mutate(&cfg)
		_, err := Train(cfg)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("case %d: error %v, want substring %q", i, err, c.wantSub)
		}
	}
}

// TestUnknownSpecErrorListsSignatures: the unknown-algorithm error exposes
// the full registry with parameter signatures (satellite requirement).
func TestUnknownSpecErrorListsSignatures(t *testing.T) {
	cfg := smallRun()
	cfg.Algorithm = "nope"
	_, err := Train(cfg)
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"topk(density=float)", "qsgd(levels=int)", "a2sgd", "periodic(inner, interval=int)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}
